//! The n-tier discrete-event simulation engine.
//!
//! Requests flow client → tier 0 → … → tier *depth−1* and back. A request
//! holds a worker thread at every tier it is resident in — including while
//! blocked on downstream tiers — which is exactly the mechanism that turns a
//! very short bottleneck at the bottom of the pipeline into cross-tier queue
//! "pushback" (paper §V, Figs. 6/8b).
//!
//! All four §IV-B execution-boundary timestamps are recorded for every
//! request at every tier, both into the ground-truth [`RequestRecord`]s and
//! as a flat [`LifecycleEvent`] stream that the event mScopeMonitors later
//! render into native log files. Every wire message is also recorded for the
//! SysViz-style passive tap.
//!
//! ## Sharded execution
//!
//! A [`SystemConfig`] with `partitions = P` models the system as `P`
//! independent logical cells, each serving `1/P` of the users with `1/P`
//! of every node's cores, workers, memory, and disk bandwidth. Cells never
//! exchange events, so [`Simulator::run_with`] can execute them on worker
//! threads ([`mscope_sim::parallel_map`]) and deterministically merge
//! their event logs afterwards. The shard (worker) count in [`SimOptions`]
//! is a pure execution knob: the same seed yields byte-identical output at
//! any shard count, which the CI determinism gates verify via [`RunDigest`].

use crate::config::{ArrivalProcess, InjectorSpec, QueueDiscipline, SystemConfig};
use crate::record::{
    BoundaryKind, Endpoint, LifecycleEvent, MessageEvent, MsgKind, RequestRecord, ResourceSample,
    TierSpan,
};
use crate::resources::{CpuModel, DiskModel, MemoryModel, PAGE_BYTES};
use crate::types::{Interaction, NodeId, RequestId, RwKind, SessionId, TierId, TierKind};
use crate::workload::Workload;
use mscope_sim::{EventQueue, Fnv64, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// Bytes of a request message on the wire (headers + small body).
const REQ_MSG_BYTES: u64 = 420;
/// Bytes of a reply message on the wire (rendered fragment).
const REPLY_MSG_BYTES: u64 = 1800;
/// RNG stream reserved for the globally-synchronized burst phase clock.
/// Every cell draws the same phase sequence, so MMPP on/off episodes hit
/// all cells at the same instants regardless of the partition count.
const PHASE_STREAM: u64 = 0x1B57;
/// Bit position of the cell tag inside a partitioned [`RequestId`].
const REQ_CELL_SHIFT: u32 = 40;
/// Bit position of the cell tag inside a synthetic open-loop [`SessionId`].
const SESSION_CELL_SHIFT: u32 = 24;
/// Mask for the per-cell part of a synthetic open-loop session id.
const SESSION_LOCAL_MASK: u32 = (1 << SESSION_CELL_SHIFT) - 1;

/// Why a CPU burst was running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskKind {
    /// Request processing before the downstream call. Payload: request slot.
    Phase1(usize),
    /// Request processing after the downstream reply. Payload: request slot.
    Phase2(usize),
    /// Core seized by a non-request activity.
    Seize(SeizeKind),
}

/// What seized the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeizeKind {
    /// Forced dirty-page recycling (scenario B).
    Recycle,
    /// Stop-the-world garbage collection (extension injector).
    Gc,
    /// Synthetic CPU hog (extension injector).
    Hog,
}

/// A task waiting for a CPU core.
#[derive(Debug, Clone, Copy)]
struct CpuTask {
    kind: TaskKind,
    demand: SimDuration,
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A session issues its next request.
    ClientSend(SessionId),
    /// The open-loop arrival process fires (and reschedules itself).
    OpenArrival,
    /// The bursty (MMPP on/off) arrival process toggles phase.
    PhaseSwitch,
    /// A request message reaches the node serving `tier` for request `req`.
    Ingress { req: usize, tier: usize },
    /// A CPU burst completed on `node`. `core` is the owning core under
    /// per-core dFCFS dispatch, `None` under the shared-queue cFCFS path.
    BurstDone {
        node: usize,
        kind: TaskKind,
        core: Option<usize>,
    },
    /// A downstream reply reaches the node at `tier` for request `req`.
    ReplyArrive { req: usize, tier: usize },
    /// The response reaches the client.
    ClientReply { req: usize },
    /// The DB commit-log flush on `node` finished.
    FlushDone { node: usize },
    /// Periodic background writeback fires on `node`.
    WritebackStart { node: usize },
    /// The background writeback IO on `node` completed.
    WritebackDone { node: usize },
    /// Periodic resource sampling tick.
    Sample,
    /// Periodic GC trigger for a tier.
    Gc { tier: usize },
    /// DVFS throttle episode starts / ends for a tier.
    DvfsStart { tier: usize },
    /// End of a DVFS throttle episode.
    DvfsEnd { tier: usize },
    /// One-shot synthetic CPU hog.
    CpuHog {
        tier: usize,
        cores: u32,
        duration: SimDuration,
    },
    /// One-shot synthetic disk hog.
    DiskHog { tier: usize, bytes: u64 },
}

/// Monotonic counters snapshotted at each sampling tick.
#[derive(Debug, Clone, Copy, Default)]
struct CounterSnapshot {
    busy_core_us: u64,
    iowait_core_us: u64,
    disk_busy_us: u64,
    disk_bytes: u64,
    disk_ops: u64,
    net_rx: u64,
    net_tx: u64,
    log_bytes: u64,
}

/// Mutable per-node runtime state.
#[derive(Debug)]
struct NodeState {
    id: NodeId,
    kind: TierKind,
    tier_cfg: usize,
    cpu: CpuModel,
    disk: DiskModel,
    mem: MemoryModel,
    workers: usize,
    workers_busy: usize,
    accept_q: VecDeque<usize>,
    cpu_q: VecDeque<CpuTask>,
    cpu_q_front: VecDeque<CpuTask>,
    discipline: QueueDiscipline,
    /// Per-core dFCFS run queues (empty under cFCFS).
    core_q: Vec<VecDeque<CpuTask>>,
    core_q_front: Vec<VecDeque<CpuTask>>,
    /// Which cores currently run a dFCFS burst.
    core_busy: Vec<bool>,
    /// Round-robin arrival-steering pointer for dFCFS.
    rr_core: usize,
    /// Requests resident (UA recorded, UD not yet).
    in_node: u32,
    /// DB commit-log buffer fill, bytes.
    log_buffer: u64,
    flush_in_progress: bool,
    commit_waiters: Vec<usize>,
    /// Outstanding forced-recycle seize bursts.
    recycle_outstanding: u32,
    /// Outstanding GC seize bursts.
    gc_outstanding: u32,
    net_rx: u64,
    net_tx: u64,
    log_bytes: u64,
    prev: CounterSnapshot,
}

/// Per-request build state.
#[derive(Debug)]
struct InFlight {
    id: RequestId,
    session: SessionId,
    interaction: Interaction,
    client_send: SimTime,
    client_recv: Option<SimTime>,
    status: u16,
    depth: usize,
    /// Node (flat index) serving each visited tier.
    nodes: Vec<usize>,
    spans: Vec<SpanBuild>,
}

#[derive(Debug, Clone, Copy, Default)]
struct SpanBuild {
    ua: Option<SimTime>,
    ud: Option<SimTime>,
    ds: Option<SimTime>,
    dr: Option<SimTime>,
}

/// What each cell retains while it runs.
///
/// [`Digest`] mode is built for scale runs (hundreds of thousands of
/// users): every record is folded into the run's [`RunDigest`] the moment
/// it is produced and then dropped, so memory stays bounded by the number
/// of *concurrently in-flight* requests instead of the total issued.
/// Resource samples and aggregate statistics are always kept. The digests
/// are identical in both modes, which is how the benches cross-check them.
///
/// [`Digest`]: Retention::Digest
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Keep every request record, lifecycle event, and wire message.
    #[default]
    Full,
    /// Fold records into the digest as they complete and drop them.
    Digest,
}

/// Execution knobs for [`Simulator::run_with`]. None of these change the
/// simulated result — only how it is computed.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Worker threads to spread the config's partitions over. `1` runs
    /// every cell inline on the calling thread.
    pub shards: usize,
    /// What the run retains (see [`Retention`]).
    pub retention: Retention,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            shards: 1,
            retention: Retention::Full,
        }
    }
}

/// Order-sensitive FNV-1a digests of the four output streams.
///
/// Folded per cell as records are produced, then combined in cell order,
/// so the value depends only on the configuration and seed — never on the
/// shard count. Two runs with equal digests produced byte-identical
/// streams; the CI determinism matrix compares exactly these four words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunDigest {
    /// Digest of every request record (complete and pending).
    pub requests: u64,
    /// Digest of the execution-boundary event stream.
    pub lifecycle: u64,
    /// Digest of the wire-message stream.
    pub messages: u64,
    /// Digest of the raw per-node resource counters.
    pub samples: u64,
}
mscope_serdes::json_struct!(RunDigest {
    requests,
    lifecycle,
    messages,
    samples,
});

/// Aggregate statistics of the measured window, computed at finalization.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Requests issued over the whole run (including warm-up).
    pub issued: u64,
    /// Requests completed inside the measured window.
    pub completed: u64,
    /// Completed requests per second of measured time.
    pub throughput_rps: f64,
    /// Mean response time (ms) of measured completions.
    pub mean_rt_ms: f64,
    /// 99th percentile response time (ms).
    pub p99_rt_ms: f64,
    /// Maximum response time (ms).
    pub max_rt_ms: f64,
    /// Total log bytes written per node over the run.
    pub node_log_bytes: Vec<(NodeId, u64)>,
    /// Total disk bytes written per node over the run.
    pub node_disk_bytes: Vec<(NodeId, u64)>,
    /// Requests rejected with 503 by a full accept queue.
    pub rejected: u64,
    /// Total simulation events handled across all cells (the work unit the
    /// scale bench rates in events/second).
    pub sim_events: u64,
}
mscope_serdes::json_struct!(RunStats {
    issued,
    completed,
    throughput_rps,
    mean_rt_ms,
    p99_rt_ms,
    max_rt_ms,
    node_log_bytes,
    node_disk_bytes,
    rejected,
    sim_events,
});

/// Everything a run produces; the input to the monitoring framework.
#[derive(Debug)]
pub struct RunOutput {
    /// The configuration that produced this run.
    pub config: SystemConfig,
    /// Ground-truth request records (incomplete requests have empty spans).
    pub requests: Vec<RequestRecord>,
    /// Execution-boundary event stream, in time order.
    pub lifecycle: Vec<LifecycleEvent>,
    /// Every wire message, in send-time order (the passive tap's view).
    pub messages: Vec<MessageEvent>,
    /// Periodic resource samples for every node.
    pub samples: Vec<ResourceSample>,
    /// When the run ended.
    pub end_time: SimTime,
    /// Aggregate statistics over the measured window.
    pub stats: RunStats,
    /// Stream digests (see [`RunDigest`]); populated in every retention
    /// mode, and the only stream evidence kept under [`Retention::Digest`].
    pub digest: RunDigest,
}

/// The simulator. Construct with a validated [`SystemConfig`], then [`run`]
/// (or [`run_with`] to pick shard count and retention).
///
/// [`run`]: Simulator::run
/// [`run_with`]: Simulator::run_with
///
/// # Examples
///
/// ```
/// use mscope_ntier::{Simulator, SystemConfig};
/// use mscope_sim::SimDuration;
///
/// let mut cfg = SystemConfig::rubbos_baseline(50);
/// cfg.duration = SimDuration::from_secs(5);
/// cfg.warmup = SimDuration::from_secs(2);
/// let out = Simulator::new(cfg).expect("valid config").run();
/// assert!(out.stats.completed > 0);
/// ```
#[derive(Debug)]
pub struct Simulator {
    cfg: SystemConfig,
}

impl Simulator {
    /// Builds a simulator from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the validation error string if the configuration is
    /// inconsistent (see [`SystemConfig::validate`]).
    pub fn new(cfg: SystemConfig) -> Result<Simulator, String> {
        cfg.validate()?;
        Ok(Simulator { cfg })
    }

    /// Runs the experiment serially with full retention.
    pub fn run(self) -> RunOutput {
        self.run_with(&SimOptions::default())
    }

    /// Runs the experiment: one event loop per partition cell, spread over
    /// `opts.shards` worker threads, then a deterministic merge. The result
    /// is byte-identical at any shard count.
    pub fn run_with(self, opts: &SimOptions) -> RunOutput {
        let cfg = self.cfg;
        let cells = cfg.partitions.max(1) as usize;
        let retention = opts.retention;
        let outs = mscope_sim::parallel_map(cells, opts.shards.max(1), |i| {
            CellSim::new(&cfg, i as u32, retention).run_cell()
        });
        merge(cfg, outs)
    }
}

/// Splits an integer quantity `x` across `p` cells: cell `i` gets the
/// remainder-balanced share, and the shares always sum back to `x`.
fn split_u64(x: u64, p: u64, i: u64) -> u64 {
    x / p + u64::from(i < x % p)
}

/// First global session id owned by `cell` under a closed-loop split of
/// `users` across `p` cells (cells own contiguous id ranges).
fn session_base(users: u32, p: u32, cell: u32) -> u32 {
    cell * (users / p) + cell.min(users % p)
}

/// Derives the configuration one cell simulates: `1/p` of the users and of
/// every divisible per-node resource, with rates scaled to match. Fields
/// that are global invariants (durations, seeds, demands, network latency,
/// monitoring costs, commit sizes) pass through unchanged. With `p == 1`
/// this is the identity (modulo `partitions` itself).
fn cell_config(global: &SystemConfig, cell: u32) -> SystemConfig {
    let mut cfg = global.clone();
    let p = u64::from(global.partitions.max(1));
    cfg.partitions = 1;
    if p == 1 {
        return cfg;
    }
    let i = u64::from(cell);
    let pf = p as f64;
    for t in &mut cfg.tiers {
        t.workers = split_u64(t.workers as u64, p, i) as usize;
        t.cores = split_u64(u64::from(t.cores), p, i) as u32;
        t.disk_write_bw /= pf;
        t.memory.total_bytes = split_u64(t.memory.total_bytes, p, i);
        t.memory.dirty_high_bytes = split_u64(t.memory.dirty_high_bytes, p, i);
        t.memory.dirty_low_bytes = split_u64(t.memory.dirty_low_bytes, p, i);
        t.memory.writeback_max_bytes = split_u64(t.memory.writeback_max_bytes, p, i);
        t.memory.recycle_rate /= pf;
        if let Some(flush) = &mut t.log_flush {
            flush.buffer_threshold = split_u64(flush.buffer_threshold, p, i).max(1);
            flush.flush_rate /= pf;
        }
        if let Some(limit) = &mut t.accept_limit {
            *limit = split_u64(*limit as u64, p, i) as usize;
        }
    }
    cfg.workload.users = split_u64(u64::from(global.workload.users), p, i) as u32;
    match &mut cfg.workload.arrival {
        ArrivalProcess::ClosedLoop => {}
        ArrivalProcess::OpenLoop { rate_rps } => *rate_rps /= pf,
        ArrivalProcess::Bursty {
            base_rps,
            burst_rps,
            ..
        } => {
            *base_rps /= pf;
            *burst_rps /= pf;
        }
    }
    for inj in &mut cfg.injectors {
        match inj {
            InjectorSpec::CpuHog { cores, .. } => {
                *cores = split_u64(u64::from(*cores), p, i) as u32;
            }
            InjectorSpec::DiskHog { bytes, .. } => {
                *bytes = split_u64(*bytes, p, i);
            }
            InjectorSpec::GcPause { .. } | InjectorSpec::DvfsThrottle { .. } => {}
        }
    }
    cfg
}

/// Raw per-interval resource counters for one node at one sampling tick.
/// Cells emit these instead of [`ResourceSample`]s so the merge can sum
/// counters across cells *before* computing utilisation percentages.
#[derive(Debug, Clone, Copy)]
struct RawSample {
    time: SimTime,
    node: NodeId,
    kind: TierKind,
    busy_core_us: u64,
    iowait_core_us: u64,
    disk_busy_us: u64,
    disk_write_bytes: u64,
    disk_ops: u64,
    net_rx: u64,
    net_tx: u64,
    log_bytes: u64,
    dirty_bytes: u64,
    mem_used_bytes: u64,
    queue_len: u32,
    active_workers: u32,
}

/// Everything one cell hands back to the merge.
#[derive(Debug)]
struct CellOutput {
    requests: Vec<RequestRecord>,
    lifecycle: Vec<LifecycleEvent>,
    messages: Vec<MessageEvent>,
    raw_samples: Vec<RawSample>,
    rts_ms: Vec<f64>,
    issued: u64,
    completed: u64,
    rejected: u64,
    node_log_bytes: Vec<(NodeId, u64)>,
    node_disk_bytes: Vec<(NodeId, u64)>,
    events: u64,
    digest: RunDigest,
}

/// One partition cell's event loop — the former whole-system simulator,
/// now parameterised by the cell index it simulates.
#[derive(Debug)]
struct CellSim {
    cfg: SystemConfig,
    cell: u32,
    retention: Retention,
    queue: EventQueue<Ev>,
    workload: Workload,
    phase_rng: SimRng,
    burst_on: bool,
    nodes: Vec<NodeState>,
    /// Flat-index of each tier's first node.
    tier_offsets: Vec<usize>,
    /// Round-robin dispatch pointer per tier.
    rr_next: Vec<usize>,
    inflight: Vec<InFlight>,
    /// Reusable `inflight` slots (populated only under digest retention).
    free_slots: Vec<usize>,
    /// First global session id this cell owns (closed loop).
    session_base: u32,
    /// Requests issued by this cell (also the per-cell request id counter).
    issued: u64,
    completed: u64,
    rejected: u64,
    rts_ms: Vec<f64>,
    warm_start: SimTime,
    lifecycle: Vec<LifecycleEvent>,
    messages: Vec<MessageEvent>,
    raw_samples: Vec<RawSample>,
    dig_requests: Fnv64,
    dig_lifecycle: Fnv64,
    dig_messages: Fnv64,
    dig_samples: Fnv64,
    events: u64,
    end: SimTime,
}

impl CellSim {
    /// Builds the event loop for one cell of an already-validated config.
    fn new(global: &SystemConfig, cell: u32, retention: Retention) -> CellSim {
        let cfg = cell_config(global, cell);
        let mut root_rng = SimRng::split(cfg.seed, u64::from(cell));
        let workload = Workload::new(cfg.workload.clone(), root_rng.fork(1));
        let phase_rng = SimRng::split(cfg.seed, PHASE_STREAM);
        let session_base = session_base(global.workload.users, global.partitions.max(1), cell);

        let mut nodes = Vec::new();
        let mut tier_offsets = Vec::new();
        for (ti, t) in cfg.tiers.iter().enumerate() {
            tier_offsets.push(nodes.len());
            let dfcfs = t.discipline == QueueDiscipline::Dfcfs;
            let cores = t.cores as usize;
            for replica in 0..t.replicas {
                nodes.push(NodeState {
                    id: NodeId {
                        tier: TierId(ti),
                        replica,
                    },
                    kind: t.kind,
                    tier_cfg: ti,
                    cpu: CpuModel::new(t.cores),
                    disk: DiskModel::new(t.disk_write_bw),
                    mem: MemoryModel::new(
                        t.memory.total_bytes,
                        t.memory.dirty_high_bytes,
                        t.memory.dirty_low_bytes,
                    ),
                    workers: t.workers,
                    workers_busy: 0,
                    accept_q: VecDeque::new(),
                    cpu_q: VecDeque::new(),
                    cpu_q_front: VecDeque::new(),
                    discipline: t.discipline,
                    core_q: vec![VecDeque::new(); if dfcfs { cores } else { 0 }],
                    core_q_front: vec![VecDeque::new(); if dfcfs { cores } else { 0 }],
                    core_busy: vec![false; if dfcfs { cores } else { 0 }],
                    rr_core: 0,
                    in_node: 0,
                    log_buffer: 0,
                    flush_in_progress: false,
                    commit_waiters: Vec::new(),
                    recycle_outstanding: 0,
                    gc_outstanding: 0,
                    net_rx: 0,
                    net_tx: 0,
                    log_bytes: 0,
                    prev: CounterSnapshot::default(),
                });
            }
        }
        let rr_next = vec![0; cfg.tiers.len()];
        let end = cfg.end_time();
        let warm_start = SimTime::ZERO + cfg.warmup;
        CellSim {
            cfg,
            cell,
            retention,
            queue: EventQueue::new(),
            workload,
            phase_rng,
            burst_on: false,
            nodes,
            tier_offsets,
            rr_next,
            inflight: Vec::new(),
            free_slots: Vec::new(),
            session_base,
            issued: 0,
            completed: 0,
            rejected: 0,
            rts_ms: Vec::new(),
            warm_start,
            lifecycle: Vec::new(),
            messages: Vec::new(),
            raw_samples: Vec::new(),
            dig_requests: Fnv64::new(),
            dig_lifecycle: Fnv64::new(),
            dig_messages: Fnv64::new(),
            dig_samples: Fnv64::new(),
            events: 0,
            end,
        }
    }

    /// Runs the cell's event loop to completion.
    fn run_cell(mut self) -> CellOutput {
        // Seed the event queue.
        match self.cfg.workload.arrival {
            ArrivalProcess::ClosedLoop => {
                let base = self.session_base;
                for (at, session) in self.workload.initial_arrivals() {
                    // Workload numbers the cell's users 0..users_local;
                    // offset into this cell's global session id range.
                    self.queue
                        .schedule(at, Ev::ClientSend(SessionId(base + session.0)));
                }
            }
            ArrivalProcess::OpenLoop { rate_rps } => {
                let gap = self.workload.interarrival(rate_rps);
                self.queue.schedule(SimTime::ZERO + gap, Ev::OpenArrival);
            }
            ArrivalProcess::Bursty { base_rps, .. } => {
                let gap = self.workload.interarrival(base_rps);
                self.queue.schedule(SimTime::ZERO + gap, Ev::OpenArrival);
                let off = self.phase_len(false);
                self.queue.schedule(SimTime::ZERO + off, Ev::PhaseSwitch);
            }
        }
        for ni in 0..self.nodes.len() {
            let period = self.tier_cfg(ni).memory.writeback_period;
            self.queue
                .schedule(SimTime::ZERO + period, Ev::WritebackStart { node: ni });
        }
        self.queue
            .schedule(SimTime::ZERO + self.cfg.sample_period, Ev::Sample);
        let injectors = self.cfg.injectors.clone();
        for inj in injectors {
            match inj {
                InjectorSpec::GcPause { tier, period, .. } => {
                    self.queue.schedule(SimTime::ZERO + period, Ev::Gc { tier });
                }
                InjectorSpec::DvfsThrottle { tier, period, .. } => {
                    self.queue
                        .schedule(SimTime::ZERO + period, Ev::DvfsStart { tier });
                }
                InjectorSpec::CpuHog {
                    tier,
                    at,
                    cores,
                    duration,
                } => {
                    self.queue.schedule(
                        at,
                        Ev::CpuHog {
                            tier,
                            cores,
                            duration,
                        },
                    );
                }
                InjectorSpec::DiskHog { tier, at, bytes } => {
                    self.queue.schedule(at, Ev::DiskHog { tier, bytes });
                }
            }
        }

        // Main loop.
        while let Some(t) = self.queue.peek_time() {
            if t > self.end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event exists");
            self.events += 1;
            self.handle(now, ev);
        }
        self.finalize()
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::ClientSend(session) => self.client_send(now, session),
            Ev::OpenArrival => self.open_arrival(now),
            Ev::PhaseSwitch => self.phase_switch(now),
            Ev::Ingress { req, tier } => self.ingress(now, req, tier),
            Ev::BurstDone { node, kind, core } => self.burst_done(now, node, kind, core),
            Ev::ReplyArrive { req, tier } => self.reply_arrive(now, req, tier),
            Ev::ClientReply { req } => self.client_reply(now, req),
            Ev::FlushDone { node } => self.flush_done(now, node),
            Ev::WritebackStart { node } => self.writeback_start(now, node),
            Ev::WritebackDone { node } => self.nodes[node].cpu.unblock_io(now),
            Ev::Sample => self.sample(now),
            Ev::Gc { tier } => self.gc_tick(now, tier),
            Ev::DvfsStart { tier } => self.dvfs_start(now, tier),
            Ev::DvfsEnd { tier } => self.dvfs_end(now, tier),
            Ev::CpuHog {
                tier,
                cores,
                duration,
            } => self.cpu_hog(now, tier, cores, duration),
            Ev::DiskHog { tier, bytes } => self.disk_hog(now, tier, bytes),
        }
    }

    fn tier_cfg(&self, ni: usize) -> &crate::config::TierConfig {
        &self.cfg.tiers[self.nodes[ni].tier_cfg]
    }

    /// Picks the node serving `tier` for the next dispatch (round-robin).
    fn pick_node(&mut self, tier: usize) -> usize {
        let replicas = self.cfg.tiers[tier].replicas;
        let offset = self.tier_offsets[tier];
        let pick = self.rr_next[tier] % replicas;
        self.rr_next[tier] = (self.rr_next[tier] + 1) % replicas;
        offset + pick
    }

    // ------------------------------------------------------------------
    // Client side
    // ------------------------------------------------------------------

    /// Mean length of the current MMPP phase, or a safe default if the
    /// arrival process is not bursty (the event then simply re-arms).
    fn phase_len(&mut self, on: bool) -> SimDuration {
        let ArrivalProcess::Bursty {
            mean_on, mean_off, ..
        } = self.cfg.workload.arrival
        else {
            return SimDuration::from_secs(1);
        };
        let mean = if on { mean_on } else { mean_off };
        SimDuration::from_secs_f64(self.phase_rng.exponential(mean.as_secs_f64()))
    }

    /// Toggles the bursty on/off phase. The phase clock runs on its own
    /// RNG stream shared by every cell, so all cells switch together.
    fn phase_switch(&mut self, now: SimTime) {
        self.burst_on = !self.burst_on;
        let len = self.phase_len(self.burst_on);
        self.queue.schedule(now + len, Ev::PhaseSwitch);
    }

    fn open_arrival(&mut self, now: SimTime) {
        let rate = match self.cfg.workload.arrival {
            ArrivalProcess::ClosedLoop => return,
            ArrivalProcess::OpenLoop { rate_rps } => rate_rps,
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                ..
            } => {
                if self.burst_on {
                    burst_rps
                } else {
                    base_rps
                }
            }
        };
        let gap = self.workload.interarrival(rate);
        self.queue.schedule(now + gap, Ev::OpenArrival);
        // Synthetic session id: open-loop arrivals are independent. Tag
        // with the cell so ids stay unique across the whole run.
        let session = SessionId(
            (self.cell << SESSION_CELL_SHIFT) | (self.issued as u32 & SESSION_LOCAL_MASK),
        );
        self.client_send(now, session);
    }

    fn client_send(&mut self, now: SimTime, session: SessionId) {
        if now >= self.end {
            return;
        }
        let interaction = self.workload.next_interaction();
        let depth = interaction.spec().depth.min(self.cfg.tiers.len());
        let front = self.pick_node(0);
        let id = RequestId((u64::from(self.cell) << REQ_CELL_SHIFT) | self.issued);
        self.issued += 1;
        let record = InFlight {
            id,
            session,
            interaction,
            client_send: now,
            client_recv: None,
            status: 200,
            depth,
            nodes: vec![front],
            spans: vec![SpanBuild::default()],
        };
        let req = if let Some(slot) = self.free_slots.pop() {
            self.inflight[slot] = record;
            slot
        } else {
            self.inflight.push(record);
            self.inflight.len() - 1
        };
        let hop = self.cfg.network.hop_latency;
        self.push_message(MessageEvent {
            send_time: now,
            recv_time: now + hop,
            src: Endpoint::Client,
            dst: Endpoint::Node(self.nodes[front].id),
            request: id,
            interaction,
            kind: MsgKind::RequestDown,
        });
        self.queue.schedule(now + hop, Ev::Ingress { req, tier: 0 });
    }

    fn client_reply(&mut self, now: SimTime, req: usize) {
        let r = &mut self.inflight[req];
        r.client_recv = Some(now);
        let session = r.session;
        if matches!(self.cfg.workload.arrival, ArrivalProcess::ClosedLoop) {
            let think = self.workload.think_time();
            self.queue.schedule(now + think, Ev::ClientSend(session));
        }
        self.finish_request(req);
    }

    /// Final accounting for a request whose reply reached the client (the
    /// terminal event of every request chain, 503 rejects included). Folds
    /// the finished record into the digest; under digest retention the
    /// slot is recycled immediately.
    fn finish_request(&mut self, req: usize) {
        {
            let f = &self.inflight[req];
            if f.status == 503 {
                self.rejected += 1;
            }
            if f.client_send >= self.warm_start {
                if let Some(recv) = f.client_recv {
                    self.completed += 1;
                    self.rts_ms.push((recv - f.client_send).as_millis_f64());
                }
            }
        }
        let record = self.build_record(req);
        fold_request(&mut self.dig_requests, &record);
        if self.retention == Retention::Digest {
            self.free_slots.push(req);
        }
    }

    /// Materialises the [`RequestRecord`] for an `inflight` slot.
    /// Incomplete requests get empty spans, exactly as at finalization.
    fn build_record(&self, req: usize) -> RequestRecord {
        let f = &self.inflight[req];
        let complete = f.client_recv.is_some();
        let spans = if complete {
            f.spans
                .iter()
                .enumerate()
                .map(|(i, s)| TierSpan {
                    node: self.nodes[f.nodes[i]].id,
                    upstream_arrival: s.ua.expect("complete request has UA"),
                    upstream_departure: s.ud.expect("complete request has UD"),
                    downstream_sending: s.ds,
                    downstream_receiving: s.dr,
                })
                .collect()
        } else {
            Vec::new()
        };
        RequestRecord {
            id: f.id,
            session: f.session,
            interaction: f.interaction,
            client_send: f.client_send,
            client_recv: f.client_recv,
            status: f.status,
            spans,
        }
    }

    /// Records a lifecycle event: always folded, retained only in full mode.
    fn push_lifecycle(&mut self, ev: LifecycleEvent) {
        fold_lifecycle(&mut self.dig_lifecycle, &ev);
        if self.retention == Retention::Full {
            self.lifecycle.push(ev);
        }
    }

    /// Records a wire message: always folded, retained only in full mode.
    fn push_message(&mut self, ev: MessageEvent) {
        fold_message(&mut self.dig_messages, &ev);
        if self.retention == Retention::Full {
            self.messages.push(ev);
        }
    }

    // ------------------------------------------------------------------
    // Node request path
    // ------------------------------------------------------------------

    fn boundary(&mut self, now: SimTime, ni: usize, req: usize, kind: BoundaryKind) {
        self.push_lifecycle(LifecycleEvent {
            time: now,
            node: self.nodes[ni].id,
            kind: self.nodes[ni].kind,
            request: self.inflight[req].id,
            interaction: self.inflight[req].interaction,
            boundary: kind,
            status: self.inflight[req].status,
        });
    }

    fn ingress(&mut self, now: SimTime, req: usize, tier: usize) {
        let ni = self.inflight[req].nodes[tier];
        // Listen-backlog overflow: reject with 503 before admission.
        let limit = self.cfg.tiers[tier].accept_limit;
        {
            let node = &self.nodes[ni];
            if let Some(limit) = limit {
                if node.workers_busy >= node.workers && node.accept_q.len() >= limit {
                    self.reject(now, ni, req, tier);
                    return;
                }
            }
        }
        self.inflight[req].spans[tier].ua = Some(now);
        self.boundary(now, ni, req, BoundaryKind::UpstreamArrival);
        let node = &mut self.nodes[ni];
        node.in_node += 1;
        node.net_rx += REQ_MSG_BYTES;
        if node.workers_busy < node.workers {
            self.admit(now, ni, req);
        } else {
            self.nodes[ni].accept_q.push_back(req);
        }
    }

    /// Rejects a request at a full accept queue: the server writes a 503
    /// log line (real servers log rejected requests too) and the error
    /// travels back up the normal reply path.
    fn reject(&mut self, now: SimTime, ni: usize, req: usize, tier: usize) {
        self.inflight[req].status = 503;
        self.inflight[req].spans[tier].ua = Some(now);
        self.inflight[req].spans[tier].ud = Some(now);
        self.boundary(now, ni, req, BoundaryKind::UpstreamArrival);
        self.boundary(now, ni, req, BoundaryKind::UpstreamDeparture);
        let tcfg = &self.cfg.tiers[tier];
        let mut bytes = tcfg.base_log_bytes;
        if self.cfg.monitoring.event_monitors {
            bytes += self.cfg.monitoring.per_record_bytes;
        }
        let mem_cfg = tcfg.memory.clone();
        let node = &mut self.nodes[ni];
        node.log_bytes += bytes;
        node.net_rx += REQ_MSG_BYTES;
        node.net_tx += REPLY_MSG_BYTES;
        if node.mem.write(bytes) {
            self.start_recycle(now, ni, &mem_cfg);
        }
        let hop = self.cfg.network.hop_latency;
        let (dst, event): (Endpoint, Ev) = if tier == 0 {
            (Endpoint::Client, Ev::ClientReply { req })
        } else {
            let up_node = self.inflight[req].nodes[tier - 1];
            (
                Endpoint::Node(self.nodes[up_node].id),
                Ev::ReplyArrive {
                    req,
                    tier: tier - 1,
                },
            )
        };
        self.push_message(MessageEvent {
            send_time: now,
            recv_time: now + hop,
            src: Endpoint::Node(self.nodes[ni].id),
            dst,
            request: self.inflight[req].id,
            interaction: self.inflight[req].interaction,
            kind: MsgKind::ReplyUp,
        });
        self.queue.schedule(now + hop, event);
    }

    fn admit(&mut self, now: SimTime, ni: usize, req: usize) {
        self.nodes[ni].workers_busy += 1;
        let tier = self.nodes[ni].tier_cfg;
        let tcfg = &self.cfg.tiers[tier];
        let spec = self.inflight[req].interaction.spec();
        let mut mean = tcfg.base_demand.mul_f64(spec.demand_factor);
        if spec.rw == RwKind::Write {
            mean += tcfg.write_demand_extra;
        }
        let mut demand = self.workload.demand(mean, tcfg.demand_cv);
        demand += self.monitor_cpu(tcfg.kind);
        self.enqueue_cpu(now, ni, TaskKind::Phase1(req), demand, false);
    }

    /// Event-monitor CPU cost per request record at a node of this kind.
    fn monitor_cpu(&self, kind: TierKind) -> SimDuration {
        if !self.cfg.monitoring.event_monitors {
            return SimDuration::ZERO;
        }
        let base = self.cfg.monitoring.per_record_cpu;
        if kind == TierKind::Tomcat {
            base.mul_f64(self.cfg.monitoring.tomcat_cpu_multiplier)
        } else {
            base
        }
    }

    fn enqueue_cpu(
        &mut self,
        now: SimTime,
        ni: usize,
        kind: TaskKind,
        demand: SimDuration,
        front: bool,
    ) {
        let node = &mut self.nodes[ni];
        match node.discipline {
            QueueDiscipline::Cfcfs => {
                // Centralised FCFS: any free core takes the burst, one
                // shared queue per node when all cores are busy.
                if let Some(done) = node.cpu.try_start(now, demand) {
                    self.queue.schedule(
                        done,
                        Ev::BurstDone {
                            node: ni,
                            kind,
                            core: None,
                        },
                    );
                } else if front {
                    node.cpu_q_front.push_back(CpuTask { kind, demand });
                } else {
                    node.cpu_q.push_back(CpuTask { kind, demand });
                }
            }
            QueueDiscipline::Dfcfs => {
                // Decentralised FCFS: arrivals are steered round-robin to
                // a specific core and wait in that core's queue even if a
                // sibling core is idle (the no-work-stealing model).
                let cores = node.core_busy.len().max(1);
                let c = node.rr_core % cores;
                node.rr_core = (node.rr_core + 1) % cores;
                if !node.core_busy[c] {
                    if let Some(done) = node.cpu.try_start(now, demand) {
                        node.core_busy[c] = true;
                        self.queue.schedule(
                            done,
                            Ev::BurstDone {
                                node: ni,
                                kind,
                                core: Some(c),
                            },
                        );
                        return;
                    }
                }
                if front {
                    node.core_q_front[c].push_back(CpuTask { kind, demand });
                } else {
                    node.core_q[c].push_back(CpuTask { kind, demand });
                }
            }
        }
    }

    fn burst_done(&mut self, now: SimTime, ni: usize, kind: TaskKind, core: Option<usize>) {
        self.nodes[ni].cpu.finish(now);
        match core {
            None => {
                // cFCFS: hand the freed core to the next queued task
                // (priority first) from the shared queues.
                let next = {
                    let node = &mut self.nodes[ni];
                    node.cpu_q_front
                        .pop_front()
                        .or_else(|| node.cpu_q.pop_front())
                };
                if let Some(task) = next {
                    let done = self.nodes[ni]
                        .cpu
                        .try_start(now, task.demand)
                        .expect("core was just freed");
                    self.queue.schedule(
                        done,
                        Ev::BurstDone {
                            node: ni,
                            kind: task.kind,
                            core: None,
                        },
                    );
                }
            }
            Some(c) => {
                // dFCFS: only this core's own queue may refill it.
                let node = &mut self.nodes[ni];
                node.core_busy[c] = false;
                let next = node.core_q_front[c]
                    .pop_front()
                    .or_else(|| node.core_q[c].pop_front());
                if let Some(task) = next {
                    if let Some(done) = node.cpu.try_start(now, task.demand) {
                        node.core_busy[c] = true;
                        self.queue.schedule(
                            done,
                            Ev::BurstDone {
                                node: ni,
                                kind: task.kind,
                                core: Some(c),
                            },
                        );
                    } else {
                        // Model accounting refused the start; requeue at
                        // the head so ordering is preserved.
                        node.core_q_front[c].push_front(task);
                    }
                }
            }
        }
        match kind {
            TaskKind::Phase1(req) => self.phase1_done(now, ni, req),
            TaskKind::Phase2(req) => self.complete_tier(now, ni, req),
            TaskKind::Seize(SeizeKind::Recycle) => {
                let node = &mut self.nodes[ni];
                node.recycle_outstanding -= 1;
                if node.recycle_outstanding == 0 {
                    node.mem.end_recycle();
                }
            }
            TaskKind::Seize(SeizeKind::Gc) => {
                self.nodes[ni].gc_outstanding -= 1;
            }
            TaskKind::Seize(SeizeKind::Hog) => {}
        }
    }

    fn phase1_done(&mut self, now: SimTime, ni: usize, req: usize) {
        let tier = self.nodes[ni].tier_cfg;
        let depth = self.inflight[req].depth;
        if tier + 1 < depth {
            // Forward downstream; the worker stays held.
            let next_node = self.pick_node(tier + 1);
            let r = &mut self.inflight[req];
            r.nodes.push(next_node);
            r.spans.push(SpanBuild::default());
            r.spans[tier].ds = Some(now);
            self.boundary(now, ni, req, BoundaryKind::DownstreamSending);
            let hop = self.cfg.network.hop_latency;
            self.nodes[ni].net_tx += REQ_MSG_BYTES;
            self.push_message(MessageEvent {
                send_time: now,
                recv_time: now + hop,
                src: Endpoint::Node(self.nodes[ni].id),
                dst: Endpoint::Node(self.nodes[next_node].id),
                request: self.inflight[req].id,
                interaction: self.inflight[req].interaction,
                kind: MsgKind::RequestDown,
            });
            self.queue.schedule(
                now + hop,
                Ev::Ingress {
                    req,
                    tier: tier + 1,
                },
            );
        } else {
            // Deepest tier for this request: commit (DB tiers) then reply.
            if self.try_commit(now, ni, req) {
                self.complete_tier(now, ni, req);
            }
        }
    }

    /// Handles the commit-log append for write interactions at the deepest
    /// tier. Returns `true` if the request can complete now, `false` if it
    /// joined the flush wait group (it will complete from [`flush_done`]).
    ///
    /// [`flush_done`]: CellSim::flush_done
    fn try_commit(&mut self, now: SimTime, ni: usize, req: usize) -> bool {
        let tier = self.nodes[ni].tier_cfg;
        let tcfg = &self.cfg.tiers[tier];
        let Some(flush) = tcfg.log_flush.clone() else {
            return true;
        };
        let is_write =
            self.inflight[req].interaction.rw() == RwKind::Write && tcfg.commit_bytes > 0;
        if is_write {
            self.nodes[ni].log_buffer += tcfg.commit_bytes;
        }
        let node = &mut self.nodes[ni];
        if node.flush_in_progress {
            // Writes stall on group commit; reads stall when checkpoint IO
            // starves the buffer pool (the full §V-A effect).
            let stalls = if is_write {
                flush.stall_writes
            } else {
                flush.stall_reads
            };
            if stalls {
                node.commit_waiters.push(req);
                node.cpu.block_on_io(now);
                return false;
            }
            return true;
        }
        if is_write && node.log_buffer >= flush.buffer_threshold {
            let bytes = node.log_buffer;
            node.log_buffer = 0;
            node.flush_in_progress = true;
            let done = node.disk.submit_write_at_rate(now, bytes, flush.flush_rate);
            self.queue.schedule(done, Ev::FlushDone { node: ni });
            if flush.stall_writes {
                let node = &mut self.nodes[ni];
                node.commit_waiters.push(req);
                node.cpu.block_on_io(now);
                return false;
            }
        }
        true
    }

    fn flush_done(&mut self, now: SimTime, ni: usize) {
        self.nodes[ni].flush_in_progress = false;
        let waiters = std::mem::take(&mut self.nodes[ni].commit_waiters);
        for req in waiters {
            self.nodes[ni].cpu.unblock_io(now);
            self.complete_tier(now, ni, req);
        }
        // Commits that arrived mid-flush may already refill the buffer.
        let tier = self.nodes[ni].tier_cfg;
        if let Some(flush) = self.cfg.tiers[tier].log_flush.clone() {
            let node = &mut self.nodes[ni];
            if node.log_buffer >= flush.buffer_threshold {
                let bytes = node.log_buffer;
                node.log_buffer = 0;
                node.flush_in_progress = true;
                let done = node.disk.submit_write_at_rate(now, bytes, flush.flush_rate);
                self.queue.schedule(done, Ev::FlushDone { node: ni });
            }
        }
    }

    /// Completes a request's residence at a tier: records UD, writes the log
    /// record, frees the worker, admits the next queued request, and sends
    /// the reply upstream.
    fn complete_tier(&mut self, now: SimTime, ni: usize, req: usize) {
        let tier = self.nodes[ni].tier_cfg;
        self.inflight[req].spans[tier].ud = Some(now);
        self.boundary(now, ni, req, BoundaryKind::UpstreamDeparture);

        // Native log write (+ monitor record when instrumented).
        let tcfg = &self.cfg.tiers[tier];
        let mut bytes = tcfg.base_log_bytes;
        if self.cfg.monitoring.event_monitors {
            bytes += self.cfg.monitoring.per_record_bytes;
        }
        let mem_cfg = tcfg.memory.clone();
        let node = &mut self.nodes[ni];
        node.log_bytes += bytes;
        if node.mem.write(bytes) {
            self.start_recycle(now, ni, &mem_cfg);
        }

        let node = &mut self.nodes[ni];
        node.in_node -= 1;
        node.workers_busy -= 1;
        node.net_tx += REPLY_MSG_BYTES;
        if let Some(next_req) = node.accept_q.pop_front() {
            self.admit(now, ni, next_req);
        }

        let hop = self.cfg.network.hop_latency;
        let (dst, event): (Endpoint, Ev) = if tier == 0 {
            (Endpoint::Client, Ev::ClientReply { req })
        } else {
            let up_node = self.inflight[req].nodes[tier - 1];
            (
                Endpoint::Node(self.nodes[up_node].id),
                Ev::ReplyArrive {
                    req,
                    tier: tier - 1,
                },
            )
        };
        self.push_message(MessageEvent {
            send_time: now,
            recv_time: now + hop,
            src: Endpoint::Node(self.nodes[ni].id),
            dst,
            request: self.inflight[req].id,
            interaction: self.inflight[req].interaction,
            kind: MsgKind::ReplyUp,
        });
        self.queue.schedule(now + hop, event);
    }

    fn reply_arrive(&mut self, now: SimTime, req: usize, tier: usize) {
        let ni = self.inflight[req].nodes[tier];
        self.inflight[req].spans[tier].dr = Some(now);
        self.boundary(now, ni, req, BoundaryKind::DownstreamReceiving);
        self.nodes[ni].net_rx += REPLY_MSG_BYTES;
        let tcfg = &self.cfg.tiers[tier];
        let mean = tcfg.phase2_demand;
        let cv = tcfg.demand_cv;
        let demand = self.workload.demand(mean, cv);
        self.enqueue_cpu(now, ni, TaskKind::Phase2(req), demand, false);
    }

    // ------------------------------------------------------------------
    // Memory / writeback / injectors
    // ------------------------------------------------------------------

    fn start_recycle(&mut self, now: SimTime, ni: usize, mem_cfg: &crate::config::MemoryConfig) {
        let node = &mut self.nodes[ni];
        let drained = node.mem.begin_recycle();
        if drained == 0 {
            node.mem.end_recycle();
            return;
        }
        let dur = SimDuration::from_secs_f64(drained as f64 / mem_cfg.recycle_rate);
        let cores = mem_cfg.recycle_cores.min(node.cpu.cores()).max(1);
        node.recycle_outstanding = cores;
        node.disk.submit_write(now, drained);
        for _ in 0..cores {
            self.enqueue_cpu(now, ni, TaskKind::Seize(SeizeKind::Recycle), dur, true);
        }
    }

    fn writeback_start(&mut self, now: SimTime, ni: usize) {
        let mem_cfg = self.tier_cfg(ni).memory.clone();
        let node = &mut self.nodes[ni];
        let drained = node.mem.background_writeback(mem_cfg.writeback_max_bytes);
        if drained > 0 {
            let done = node.disk.submit_write(now, drained);
            node.cpu.block_on_io(now);
            self.queue.schedule(done, Ev::WritebackDone { node: ni });
        }
        self.queue.schedule(
            now + mem_cfg.writeback_period,
            Ev::WritebackStart { node: ni },
        );
    }

    fn gc_tick(&mut self, now: SimTime, tier: usize) {
        let Some(InjectorSpec::GcPause { period, pause, .. }) = self
            .cfg
            .injectors
            .iter()
            .find(|i| matches!(i, InjectorSpec::GcPause { tier: t, .. } if *t == tier))
            .cloned()
        else {
            return;
        };
        let (start, count) = (self.tier_offsets[tier], self.cfg.tiers[tier].replicas);
        for ni in start..start + count {
            let cores = self.nodes[ni].cpu.cores();
            self.nodes[ni].gc_outstanding += cores;
            for _ in 0..cores {
                self.enqueue_cpu(now, ni, TaskKind::Seize(SeizeKind::Gc), pause, true);
            }
        }
        self.queue.schedule(now + period, Ev::Gc { tier });
    }

    fn dvfs_start(&mut self, now: SimTime, tier: usize) {
        let Some(InjectorSpec::DvfsThrottle {
            period,
            slow_factor,
            duration,
            ..
        }) = self
            .cfg
            .injectors
            .iter()
            .find(|i| matches!(i, InjectorSpec::DvfsThrottle { tier: t, .. } if *t == tier))
            .cloned()
        else {
            return;
        };
        let (start, count) = (self.tier_offsets[tier], self.cfg.tiers[tier].replicas);
        for ni in start..start + count {
            self.nodes[ni].cpu.set_speed(now, slow_factor);
        }
        self.queue.schedule(now + duration, Ev::DvfsEnd { tier });
        self.queue.schedule(now + period, Ev::DvfsStart { tier });
    }

    fn dvfs_end(&mut self, now: SimTime, tier: usize) {
        let (start, count) = (self.tier_offsets[tier], self.cfg.tiers[tier].replicas);
        for ni in start..start + count {
            self.nodes[ni].cpu.set_speed(now, 1.0);
        }
    }

    fn cpu_hog(&mut self, now: SimTime, tier: usize, cores: u32, duration: SimDuration) {
        let (start, count) = (self.tier_offsets[tier], self.cfg.tiers[tier].replicas);
        for ni in start..start + count {
            let n = cores.min(self.nodes[ni].cpu.cores());
            for _ in 0..n {
                self.enqueue_cpu(now, ni, TaskKind::Seize(SeizeKind::Hog), duration, true);
            }
        }
    }

    fn disk_hog(&mut self, now: SimTime, tier: usize, bytes: u64) {
        let (start, count) = (self.tier_offsets[tier], self.cfg.tiers[tier].replicas);
        for ni in start..start + count {
            self.nodes[ni].disk.submit_write(now, bytes);
        }
    }

    // ------------------------------------------------------------------
    // Sampling & finalization
    // ------------------------------------------------------------------

    /// Snapshots every node's monotonic counters and emits the interval
    /// deltas as a [`RawSample`] per node. Utilisation percentages are NOT
    /// computed here: the merge first sums the counters of the node's
    /// cells, so the percentages are of the whole (un-partitioned) node.
    fn sample(&mut self, now: SimTime) {
        for ni in 0..self.nodes.len() {
            let node = &mut self.nodes[ni];
            node.cpu.accumulate(now);
            node.disk.accumulate(now);
            let snap = CounterSnapshot {
                busy_core_us: node.cpu.busy_core_us(),
                iowait_core_us: node.cpu.iowait_core_us(),
                disk_busy_us: node.disk.busy_us(),
                disk_bytes: node.disk.bytes_written(),
                disk_ops: node.disk.ops(),
                net_rx: node.net_rx,
                net_tx: node.net_tx,
                log_bytes: node.log_bytes,
            };
            let raw = RawSample {
                time: now,
                node: node.id,
                kind: node.kind,
                busy_core_us: snap.busy_core_us.saturating_sub(node.prev.busy_core_us),
                iowait_core_us: snap.iowait_core_us.saturating_sub(node.prev.iowait_core_us),
                disk_busy_us: snap.disk_busy_us.saturating_sub(node.prev.disk_busy_us),
                disk_write_bytes: snap.disk_bytes - node.prev.disk_bytes,
                disk_ops: snap.disk_ops - node.prev.disk_ops,
                net_rx: snap.net_rx - node.prev.net_rx,
                net_tx: snap.net_tx - node.prev.net_tx,
                log_bytes: snap.log_bytes - node.prev.log_bytes,
                dirty_bytes: node.mem.dirty_bytes(),
                mem_used_bytes: node.mem.used_bytes(),
                queue_len: node.in_node,
                active_workers: node.workers_busy as u32,
            };
            node.prev = snap;
            fold_raw_sample(&mut self.dig_samples, &raw);
            self.raw_samples.push(raw);
        }
        let next = now + self.cfg.sample_period;
        if next <= self.end {
            self.queue.schedule(next, Ev::Sample);
        }
    }

    fn finalize(mut self) -> CellOutput {
        // Requests still pending at the end never reached finish_request;
        // fold them now in id order (== slot order under full retention)
        // so full and digest retention produce identical digests.
        let mut pending: Vec<usize> = (0..self.inflight.len())
            .filter(|&i| self.inflight[i].client_recv.is_none())
            .collect();
        pending.sort_by_key(|&i| self.inflight[i].id.0);
        for slot in pending {
            if self.inflight[slot].status == 503 {
                self.rejected += 1;
            }
            let record = self.build_record(slot);
            fold_request(&mut self.dig_requests, &record);
        }
        let requests = if self.retention == Retention::Full {
            (0..self.inflight.len())
                .map(|i| self.build_record(i))
                .collect()
        } else {
            Vec::new()
        };
        CellOutput {
            requests,
            lifecycle: self.lifecycle,
            messages: self.messages,
            raw_samples: self.raw_samples,
            rts_ms: self.rts_ms,
            issued: self.issued,
            completed: self.completed,
            rejected: self.rejected,
            node_log_bytes: self.nodes.iter().map(|n| (n.id, n.log_bytes)).collect(),
            node_disk_bytes: self
                .nodes
                .iter()
                .map(|n| (n.id, n.disk.bytes_written()))
                .collect(),
            events: self.events,
            digest: RunDigest {
                requests: self.dig_requests.value(),
                lifecycle: self.dig_lifecycle.value(),
                messages: self.dig_messages.value(),
                samples: self.dig_samples.value(),
            },
        }
    }
}

// ----------------------------------------------------------------------
// Stream digests
// ----------------------------------------------------------------------

fn fold_node(d: &mut Fnv64, n: NodeId) {
    d.fold_u64(((n.tier.0 as u64) << 32) | n.replica as u64);
}

fn fold_endpoint(d: &mut Fnv64, e: Endpoint) {
    match e {
        Endpoint::Client => d.fold_u64(0),
        Endpoint::Node(n) => {
            d.fold_u64(1);
            fold_node(d, n);
        }
    }
}

fn fold_request(d: &mut Fnv64, r: &RequestRecord) {
    d.fold_u64(r.id.0);
    d.fold_u64(u64::from(r.session.0));
    d.fold_u64(r.interaction.idx as u64);
    d.fold_u64(r.client_send.as_micros());
    d.fold_opt(r.client_recv.map(|t| t.as_micros()));
    d.fold_u64(u64::from(r.status));
    d.fold_u64(r.spans.len() as u64);
    for s in &r.spans {
        fold_node(d, s.node);
        d.fold_u64(s.upstream_arrival.as_micros());
        d.fold_u64(s.upstream_departure.as_micros());
        d.fold_opt(s.downstream_sending.map(|t| t.as_micros()));
        d.fold_opt(s.downstream_receiving.map(|t| t.as_micros()));
    }
}

fn fold_lifecycle(d: &mut Fnv64, e: &LifecycleEvent) {
    d.fold_u64(e.time.as_micros());
    fold_node(d, e.node);
    d.fold_u64(e.kind as u64);
    d.fold_u64(e.request.0);
    d.fold_u64(e.interaction.idx as u64);
    d.fold_u64(e.boundary as u64);
    d.fold_u64(u64::from(e.status));
}

fn fold_message(d: &mut Fnv64, m: &MessageEvent) {
    d.fold_u64(m.send_time.as_micros());
    d.fold_u64(m.recv_time.as_micros());
    fold_endpoint(d, m.src);
    fold_endpoint(d, m.dst);
    d.fold_u64(m.request.0);
    d.fold_u64(m.interaction.idx as u64);
    d.fold_u64(m.kind as u64);
}

fn fold_raw_sample(d: &mut Fnv64, s: &RawSample) {
    d.fold_u64(s.time.as_micros());
    fold_node(d, s.node);
    d.fold_u64(s.busy_core_us);
    d.fold_u64(s.iowait_core_us);
    d.fold_u64(s.disk_busy_us);
    d.fold_u64(s.disk_write_bytes);
    d.fold_u64(s.disk_ops);
    d.fold_u64(s.net_rx);
    d.fold_u64(s.net_tx);
    d.fold_u64(s.log_bytes);
    d.fold_u64(s.dirty_bytes);
    d.fold_u64(s.mem_used_bytes);
    d.fold_u64(u64::from(s.queue_len));
    d.fold_u64(u64::from(s.active_workers));
}

// ----------------------------------------------------------------------
// Merge
// ----------------------------------------------------------------------

/// Deterministically combines per-cell outputs into one [`RunOutput`].
/// Pure data-plumbing over already-finished cells: the result depends only
/// on the cell outputs and their order, never on how they were scheduled.
fn merge(cfg: SystemConfig, cells: Vec<CellOutput>) -> RunOutput {
    let p = cells.len().max(1);
    let num_nodes = cfg.node_count();
    let interval_us = cfg.sample_period.as_micros() as f64;

    // Resource samples: sum each (tick, node) cell's raw counters, then
    // compute utilisation against the whole node's capacity. With one
    // cell this reproduces the un-partitioned percentages bit-for-bit.
    let min_ticks = cells
        .iter()
        .map(|c| c.raw_samples.len().checked_div(num_nodes).unwrap_or(0))
        .min()
        .unwrap_or(0);
    let mut samples = Vec::with_capacity(min_ticks * num_nodes);
    for tick in 0..min_ticks {
        for n in 0..num_nodes {
            let idx = tick * num_nodes + n;
            let Some(first) = cells.first().and_then(|c| c.raw_samples.get(idx)) else {
                continue;
            };
            let mut acc = *first;
            for c in cells.iter().skip(1) {
                if let Some(r) = c.raw_samples.get(idx) {
                    acc.busy_core_us += r.busy_core_us;
                    acc.iowait_core_us += r.iowait_core_us;
                    acc.disk_busy_us += r.disk_busy_us;
                    acc.disk_write_bytes += r.disk_write_bytes;
                    acc.disk_ops += r.disk_ops;
                    acc.net_rx += r.net_rx;
                    acc.net_tx += r.net_tx;
                    acc.log_bytes += r.log_bytes;
                    acc.dirty_bytes += r.dirty_bytes;
                    acc.mem_used_bytes += r.mem_used_bytes;
                    acc.queue_len += r.queue_len;
                    acc.active_workers += r.active_workers;
                }
            }
            let cores = cfg.tiers.get(acc.node.tier.0).map_or(1, |t| t.cores);
            let capacity = cores as f64 * interval_us;
            let busy_pct = 100.0 * acc.busy_core_us as f64 / capacity;
            let iowait_pct = 100.0 * acc.iowait_core_us as f64 / capacity;
            // An 82/18 user/sys split approximates web-serving workloads.
            let cpu_user = busy_pct * 0.82;
            let cpu_sys = busy_pct * 0.18;
            let cpu_idle = (100.0 - busy_pct - iowait_pct).max(0.0);
            let disk_util = (100.0 * acc.disk_busy_us as f64 / (p as f64 * interval_us)).min(100.0);
            samples.push(ResourceSample {
                time: acc.time,
                node: acc.node,
                kind: acc.kind,
                cpu_user,
                cpu_sys,
                cpu_iowait: iowait_pct,
                cpu_idle,
                disk_util,
                disk_write_bytes: acc.disk_write_bytes,
                disk_ops: acc.disk_ops,
                dirty_pages: acc.dirty_bytes / PAGE_BYTES,
                mem_used_bytes: acc.mem_used_bytes,
                net_rx_bytes: acc.net_rx,
                net_tx_bytes: acc.net_tx,
                queue_len: acc.queue_len,
                active_workers: acc.active_workers,
                log_bytes: acc.log_bytes,
            });
        }
    }

    // Scalar statistics and the run digest: plain sums / cell-order folds.
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut sim_events = 0u64;
    let mut rts_ms: Vec<f64> = Vec::new();
    let mut dig = [Fnv64::new(); 4];
    for c in &cells {
        issued += c.issued;
        completed += c.completed;
        rejected += c.rejected;
        sim_events += c.events;
        rts_ms.extend_from_slice(&c.rts_ms);
        dig[0].fold_u64(c.digest.requests);
        dig[1].fold_u64(c.digest.lifecycle);
        dig[2].fold_u64(c.digest.messages);
        dig[3].fold_u64(c.digest.samples);
    }
    let mut node_log_bytes = cells
        .first()
        .map(|c| c.node_log_bytes.clone())
        .unwrap_or_default();
    let mut node_disk_bytes = cells
        .first()
        .map(|c| c.node_disk_bytes.clone())
        .unwrap_or_default();
    for c in cells.iter().skip(1) {
        for (i, (_, b)) in c.node_log_bytes.iter().enumerate() {
            if let Some(slot) = node_log_bytes.get_mut(i) {
                slot.1 += b;
            }
        }
        for (i, (_, b)) in c.node_disk_bytes.iter().enumerate() {
            if let Some(slot) = node_disk_bytes.get_mut(i) {
                slot.1 += b;
            }
        }
    }
    let measured_secs = cfg.duration.as_secs_f64();
    let stats = RunStats {
        issued,
        completed,
        throughput_rps: completed as f64 / measured_secs,
        mean_rt_ms: mscope_sim::Summary::of(&rts_ms).map_or(0.0, |s| s.mean),
        p99_rt_ms: mscope_sim::percentile(&rts_ms, 99.0).unwrap_or(0.0),
        max_rt_ms: mscope_sim::Summary::of(&rts_ms).map_or(0.0, |s| s.max),
        node_log_bytes,
        node_disk_bytes,
        rejected,
        sim_events,
    };
    let digest = RunDigest {
        requests: dig[0].value(),
        lifecycle: dig[1].value(),
        messages: dig[2].value(),
        samples: dig[3].value(),
    };

    // Event streams: concatenate cell-major, then restore the global total
    // order with stable sorts (each cell's stream is already nondecreasing
    // in its key, so with one cell these sorts are the identity).
    let mut requests = Vec::new();
    let mut lifecycle = Vec::new();
    let mut messages = Vec::new();
    for c in cells {
        requests.extend(c.requests);
        lifecycle.extend(c.lifecycle);
        messages.extend(c.messages);
    }
    requests.sort_by_key(|r| r.client_send);
    lifecycle.sort_by_key(|e| e.time);
    messages.sort_by_key(|m| m.send_time);

    let end_time = cfg.end_time();
    RunOutput {
        config: cfg,
        requests,
        lifecycle,
        messages,
        samples,
        end_time,
        stats,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn short_cfg(users: u32) -> SystemConfig {
        let mut cfg = SystemConfig::rubbos_baseline(users);
        cfg.duration = SimDuration::from_secs(8);
        cfg.warmup = SimDuration::from_secs(3);
        cfg.workload.ramp_up = SimDuration::from_secs(2);
        cfg
    }

    #[test]
    fn baseline_run_completes_requests() {
        let out = Simulator::new(short_cfg(100)).unwrap().run();
        assert!(
            out.stats.completed > 30,
            "completed {}",
            out.stats.completed
        );
        assert!(out.stats.issued >= out.stats.completed);
        assert!(
            out.stats.mean_rt_ms > 0.5 && out.stats.mean_rt_ms < 100.0,
            "mean rt {}",
            out.stats.mean_rt_ms
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = Simulator::new(short_cfg(60)).unwrap().run();
        let b = Simulator::new(short_cfg(60)).unwrap().run();
        assert_eq!(a.stats.completed, b.stats.completed);
        assert_eq!(a.requests.len(), b.requests.len());
        assert_eq!(a.lifecycle.len(), b.lifecycle.len());
        assert_eq!(
            a.requests.last().map(|r| r.client_recv),
            b.requests.last().map(|r| r.client_recv)
        );
    }

    #[test]
    fn different_seed_changes_run() {
        let mut cfg = short_cfg(60);
        cfg.seed = 999;
        let a = Simulator::new(short_cfg(60)).unwrap().run();
        let b = Simulator::new(cfg).unwrap().run();
        assert_ne!(
            a.requests
                .iter()
                .filter_map(|r| r.client_recv)
                .collect::<Vec<_>>(),
            b.requests
                .iter()
                .filter_map(|r| r.client_recv)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn completed_requests_are_causally_ordered() {
        let out = Simulator::new(short_cfg(80)).unwrap().run();
        let mut checked = 0;
        for r in out.requests.iter().filter(|r| r.is_complete()) {
            assert!(r.is_causally_ordered(), "request {:?} out of order", r.id);
            checked += 1;
        }
        assert!(checked > 30);
    }

    #[test]
    fn depth_one_requests_touch_only_web_tier() {
        let out = Simulator::new(short_cfg(80)).unwrap().run();
        let statics: Vec<_> = out
            .requests
            .iter()
            .filter(|r| r.is_complete() && r.interaction.spec().depth == 1)
            .collect();
        assert!(!statics.is_empty(), "mix should include static pages");
        for r in &statics {
            assert_eq!(r.spans.len(), 1);
            assert_eq!(r.spans[0].node.tier, TierId(0));
            assert_eq!(r.spans[0].downstream_sending, None);
        }
    }

    #[test]
    fn full_depth_requests_have_four_spans() {
        let out = Simulator::new(short_cfg(80)).unwrap().run();
        let deep = out
            .requests
            .iter()
            .find(|r| r.is_complete() && r.interaction.spec().depth == 4)
            .expect("some deep request completes");
        assert_eq!(deep.spans.len(), 4);
        for (i, s) in deep.spans.iter().enumerate() {
            assert_eq!(s.node.tier, TierId(i));
        }
        // The three upper tiers all made downstream calls; the DB did not.
        assert!(deep.spans[..3]
            .iter()
            .all(|s| s.downstream_sending.is_some()));
        assert!(deep.spans[3].downstream_sending.is_none());
    }

    #[test]
    fn lifecycle_events_are_time_ordered_and_match_spans() {
        let out = Simulator::new(short_cfg(50)).unwrap().run();
        assert!(out.lifecycle.windows(2).all(|w| w[0].time <= w[1].time));
        // Each complete 4-deep request yields 4 UA + 4 UD + 3 DS + 3 DR = 14.
        let some = out
            .requests
            .iter()
            .find(|r| r.is_complete() && r.spans.len() == 4)
            .unwrap();
        let events: Vec<_> = out
            .lifecycle
            .iter()
            .filter(|e| e.request == some.id)
            .collect();
        assert_eq!(events.len(), 14);
    }

    #[test]
    fn messages_pair_up_and_respect_hop_latency() {
        let out = Simulator::new(short_cfg(50)).unwrap().run();
        let hop = out.config.network.hop_latency;
        for m in &out.messages {
            assert_eq!(m.recv_time - m.send_time, hop);
        }
        // Down and up messages balance for complete requests.
        let some = out
            .requests
            .iter()
            .find(|r| r.is_complete() && r.spans.len() == 4)
            .unwrap();
        let down = out
            .messages
            .iter()
            .filter(|m| m.request == some.id && m.kind == MsgKind::RequestDown)
            .count();
        let up = out
            .messages
            .iter()
            .filter(|m| m.request == some.id && m.kind == MsgKind::ReplyUp)
            .count();
        assert_eq!(down, 4);
        assert_eq!(up, 4);
    }

    #[test]
    fn samples_cover_all_nodes_periodically() {
        let out = Simulator::new(short_cfg(50)).unwrap().run();
        let nodes = out.config.node_count();
        assert_eq!(out.samples.len() % nodes, 0);
        let per_node = out.samples.len() / nodes;
        // 11 s run, 50 ms period → ~220 ticks.
        assert!(per_node > 200, "got {per_node} samples per node");
        for s in &out.samples {
            assert!(s.cpu_user >= 0.0 && s.cpu_idle >= 0.0);
            assert!(s.cpu_user + s.cpu_sys + s.cpu_iowait + s.cpu_idle <= 101.0);
            assert!(s.disk_util >= 0.0 && s.disk_util <= 100.0);
        }
    }

    #[test]
    fn monitors_double_log_volume() {
        let mut on = short_cfg(100);
        on.monitoring = crate::config::MonitoringConfig::enabled();
        let mut off = short_cfg(100);
        off.monitoring = crate::config::MonitoringConfig::disabled();
        let out_on = Simulator::new(on).unwrap().run();
        let out_off = Simulator::new(off).unwrap().run();
        let total_on: u64 = out_on.stats.node_log_bytes.iter().map(|(_, b)| b).sum();
        let total_off: u64 = out_off.stats.node_log_bytes.iter().map(|(_, b)| b).sum();
        let ratio = total_on as f64 / total_off as f64;
        assert!(
            (1.6..2.8).contains(&ratio),
            "monitor log ratio {ratio}, paper reports ~2x"
        );
    }

    #[test]
    fn db_flush_scenario_produces_vlrt() {
        let mut cfg = SystemConfig::scenario_db_io(400);
        // Shrink the flush threshold so the short test run triggers it.
        cfg.duration = SimDuration::from_secs(15);
        cfg.warmup = SimDuration::from_secs(3);
        cfg.workload.ramp_up = SimDuration::from_secs(2);
        cfg.tiers[3].log_flush.as_mut().unwrap().buffer_threshold = 256 << 10;
        cfg.tiers[3].log_flush.as_mut().unwrap().flush_rate = 2e6;
        let out = Simulator::new(cfg).unwrap().run();
        assert!(
            out.stats.max_rt_ms > 8.0 * out.stats.mean_rt_ms,
            "expected VLRTs: max {} vs mean {}",
            out.stats.max_rt_ms,
            out.stats.mean_rt_ms
        );
    }

    #[test]
    fn dirty_page_scenario_saturates_cpu() {
        let mut cfg = SystemConfig::scenario_dirty_page(400);
        cfg.duration = SimDuration::from_secs(15);
        cfg.warmup = SimDuration::from_secs(3);
        cfg.workload.ramp_up = SimDuration::from_secs(2);
        // Scale thresholds down to the test's lower log volume.
        cfg.tiers[0].memory.dirty_high_bytes = 120_000;
        cfg.tiers[0].memory.dirty_low_bytes = 0;
        cfg.tiers[0].memory.recycle_rate = 1e6;
        let out = Simulator::new(cfg).unwrap().run();
        let apache_sat = out
            .samples
            .iter()
            .filter(|s| s.kind == TierKind::Apache)
            .any(|s| s.cpu_user + s.cpu_sys > 90.0);
        assert!(apache_sat, "expected an Apache CPU-saturated sample");
        // Dirty pages must rise and then abruptly drop (Fig. 8d shape).
        let dirty: Vec<u64> = out
            .samples
            .iter()
            .filter(|s| s.kind == TierKind::Apache)
            .map(|s| s.dirty_pages)
            .collect();
        let max = *dirty.iter().max().unwrap();
        let drops = dirty.windows(2).any(|w| w[1] + max / 2 < w[0]);
        assert!(
            drops,
            "expected an abrupt dirty-page drop, series max {max}"
        );
    }

    #[test]
    fn gc_injector_pauses_tier() {
        let mut cfg = short_cfg(80);
        cfg.injectors.push(InjectorSpec::GcPause {
            tier: 1,
            period: SimDuration::from_secs(3),
            pause: SimDuration::from_millis(400),
        });
        let out = Simulator::new(cfg).unwrap().run();
        // During pauses the Tomcat CPU is fully seized.
        let sat = out
            .samples
            .iter()
            .filter(|s| s.kind == TierKind::Tomcat)
            .any(|s| s.cpu_user + s.cpu_sys > 95.0);
        assert!(sat, "GC should saturate Tomcat CPU");
        let base = Simulator::new(short_cfg(80)).unwrap().run();
        assert!(out.stats.max_rt_ms > base.stats.max_rt_ms);
    }

    #[test]
    fn cpu_hog_injector_delays_requests() {
        let mut cfg = short_cfg(80);
        cfg.injectors.push(InjectorSpec::CpuHog {
            tier: 0,
            at: SimTime::from_secs(5),
            cores: 2,
            duration: SimDuration::from_millis(800),
        });
        let hogged = Simulator::new(cfg).unwrap().run();
        let base = Simulator::new(short_cfg(80)).unwrap().run();
        assert!(
            hogged.stats.max_rt_ms > base.stats.max_rt_ms + 100.0,
            "hog {} vs base {}",
            hogged.stats.max_rt_ms,
            base.stats.max_rt_ms
        );
    }

    #[test]
    fn disk_hog_injector_saturates_disk() {
        let mut cfg = short_cfg(50);
        cfg.injectors.push(InjectorSpec::DiskHog {
            tier: 3,
            at: SimTime::from_secs(5),
            bytes: 200 << 20,
        });
        let out = Simulator::new(cfg).unwrap().run();
        let sat = out
            .samples
            .iter()
            .filter(|s| s.kind == TierKind::Mysql)
            .any(|s| s.disk_util > 95.0);
        assert!(sat, "disk hog should saturate the MySQL disk");
    }

    #[test]
    fn dvfs_injector_slows_tier() {
        let mut cfg = short_cfg(80);
        cfg.injectors.push(InjectorSpec::DvfsThrottle {
            tier: 1,
            period: SimDuration::from_secs(2),
            slow_factor: 0.25,
            duration: SimDuration::from_millis(700),
        });
        let throttled = Simulator::new(cfg).unwrap().run();
        let base = Simulator::new(short_cfg(80)).unwrap().run();
        assert!(throttled.stats.mean_rt_ms > base.stats.mean_rt_ms);
    }

    #[test]
    fn replicated_tier_round_robins() {
        let mut cfg = short_cfg(80);
        cfg.tiers[1].replicas = 2;
        let out = Simulator::new(cfg).unwrap().run();
        let mut replica_seen = [false; 2];
        for r in out.requests.iter().filter(|r| r.spans.len() >= 2) {
            replica_seen[r.spans[1].node.replica] = true;
        }
        assert_eq!(
            replica_seen,
            [true, true],
            "both Tomcat replicas serve traffic"
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = short_cfg(10);
        cfg.tiers[0].cores = 0;
        assert!(Simulator::new(cfg).is_err());
    }
}

#[cfg(test)]
mod topology_tests {
    use super::*;
    use crate::config::SystemConfig;

    fn short(mut cfg: SystemConfig) -> SystemConfig {
        cfg.duration = SimDuration::from_secs(8);
        cfg.warmup = SimDuration::from_secs(2);
        cfg.workload.ramp_up = SimDuration::from_secs(1);
        cfg
    }

    #[test]
    fn fig1_replicated_topology_balances_load() {
        let out = Simulator::new(short(SystemConfig::rubbos_replicated(200)))
            .unwrap()
            .run();
        assert_eq!(out.config.node_count(), 6, "1+2+1+2 nodes");
        // Both Tomcat and both MySQL replicas serve a comparable share.
        for tier in [1usize, 3] {
            let mut counts = [0usize; 2];
            for r in out.requests.iter().filter(|r| r.spans.len() > tier) {
                counts[r.spans[tier].node.replica] += 1;
            }
            let total = counts[0] + counts[1];
            assert!(total > 50, "tier {tier} served {total}");
            let balance = counts[0] as f64 / total as f64;
            assert!(
                (0.4..0.6).contains(&balance),
                "tier {tier} imbalance: {counts:?}"
            );
        }
    }

    #[test]
    fn browse_only_mix_generates_no_commit_traffic() {
        let mut cfg = short(SystemConfig::rubbos_baseline(150));
        cfg.workload = crate::config::WorkloadConfig::rubbos_browse_only(150);
        cfg.workload.ramp_up = SimDuration::from_secs(1);
        let out = Simulator::new(cfg).unwrap().run();
        assert!(out.stats.completed > 50);
        assert!(out
            .requests
            .iter()
            .all(|r| r.interaction.rw() == crate::types::RwKind::Read));
    }

    #[test]
    fn single_tier_topology_works() {
        // Degenerate but legal: a web-only system (every request depth 1).
        let mut cfg = short(SystemConfig::rubbos_baseline(100));
        cfg.tiers.truncate(1);
        let out = Simulator::new(cfg).unwrap().run();
        assert!(out.stats.completed > 30);
        for r in out.requests.iter().filter(|r| r.is_complete()) {
            assert_eq!(r.spans.len(), 1);
            assert!(r.is_causally_ordered());
        }
    }

    #[test]
    fn zero_length_run_is_empty_but_sane() {
        let mut cfg = SystemConfig::rubbos_baseline(10);
        cfg.duration = SimDuration::from_millis(1);
        cfg.warmup = SimDuration::ZERO;
        cfg.workload.ramp_up = SimDuration::from_millis(1);
        let out = Simulator::new(cfg).unwrap().run();
        // Nothing can complete in 1 ms, but the run must not panic and
        // bookkeeping must be consistent.
        assert!(out.stats.completed <= out.stats.issued);
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use crate::config::{ArrivalProcess, SystemConfig, WorkloadConfig};

    fn open_cfg(rate: f64, secs: u64) -> SystemConfig {
        let mut cfg = SystemConfig::rubbos_baseline(1);
        cfg.workload = WorkloadConfig::open_loop(rate);
        cfg.duration = SimDuration::from_secs(secs);
        cfg.warmup = SimDuration::from_secs(2);
        cfg
    }

    #[test]
    fn open_loop_hits_target_rate() {
        let out = Simulator::new(open_cfg(100.0, 20)).unwrap().run();
        // Throughput within 10 % of the offered rate (healthy system).
        assert!(
            (out.stats.throughput_rps - 100.0).abs() < 10.0,
            "observed {} rps",
            out.stats.throughput_rps
        );
    }

    #[test]
    fn open_loop_backlog_grows_under_overload() {
        // Offer more than the 2-core MySQL tier can serve (~2000 rps at
        // ~1 ms demand): the backlog must grow monotonically-ish, unlike a
        // closed loop which self-throttles.
        let mut cfg = open_cfg(600.0, 10);
        cfg.tiers[3].workers = 4;
        cfg.tiers[3].base_demand = SimDuration::from_micros(8_000);
        let out = Simulator::new(cfg).unwrap().run();
        // The worker pools bound every deeper tier, so the unbounded
        // backlog accumulates at the front tier's accept queue.
        let q: Vec<u32> = out
            .samples
            .iter()
            .filter(|s| s.node.tier.0 == 0)
            .map(|s| s.queue_len)
            .collect();
        let early = q[q.len() / 4] as f64;
        let late = q[q.len() - 1] as f64;
        assert!(
            late > early + 100.0,
            "backlog should grow without bound: early {early}, late {late}"
        );
    }

    #[test]
    fn open_loop_validation() {
        let mut cfg = open_cfg(0.0, 5);
        cfg.workload.arrival = ArrivalProcess::OpenLoop { rate_rps: 0.0 };
        assert!(cfg.validate().unwrap_err().contains("rate"));
        // users=0 is fine in open loop.
        let mut cfg = open_cfg(10.0, 5);
        cfg.workload.users = 0;
        assert!(cfg.validate().is_ok());
    }
}

#[cfg(test)]
mod sharding_tests {
    use super::*;
    use crate::config::SystemConfig;

    /// A partitioned config small enough for tests: 3 cells over tiers
    /// with enough cores/workers to slice.
    fn partitioned_cfg(users: u32, partitions: u32) -> SystemConfig {
        let mut cfg = SystemConfig::rubbos_baseline(users);
        cfg.partitions = partitions;
        for t in &mut cfg.tiers {
            t.cores = 4;
            t.workers = t.workers.max(partitions as usize * 4);
        }
        cfg.duration = SimDuration::from_secs(6);
        cfg.warmup = SimDuration::from_secs(2);
        cfg.workload.ramp_up = SimDuration::from_secs(1);
        cfg
    }

    fn run_sharded(cfg: SystemConfig, shards: usize) -> RunOutput {
        Simulator::new(cfg).unwrap().run_with(&SimOptions {
            shards,
            retention: Retention::Full,
        })
    }

    #[test]
    fn shard_count_never_changes_output() {
        let reference = run_sharded(partitioned_cfg(90, 3), 1);
        for shards in [2, 4, 7] {
            let out = run_sharded(partitioned_cfg(90, 3), shards);
            assert_eq!(out.digest, reference.digest, "shards={shards}");
            assert_eq!(out.requests, reference.requests, "shards={shards}");
            assert_eq!(out.lifecycle, reference.lifecycle, "shards={shards}");
            assert_eq!(out.messages, reference.messages, "shards={shards}");
            assert_eq!(out.samples, reference.samples, "shards={shards}");
            assert_eq!(out.stats.completed, reference.stats.completed);
            assert_eq!(out.stats.sim_events, reference.stats.sim_events);
        }
    }

    #[test]
    fn partitioned_ids_are_tagged_by_cell() {
        let out = run_sharded(partitioned_cfg(90, 3), 2);
        let mut cells_seen = [false; 3];
        for r in &out.requests {
            let cell = (r.id.0 >> REQ_CELL_SHIFT) as usize;
            assert!(cell < 3, "cell tag {cell} out of range");
            cells_seen[cell] = true;
        }
        assert_eq!(cells_seen, [true; 3], "every cell issued requests");
        // Streams are globally time-ordered after the merge.
        assert!(out.lifecycle.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(out
            .messages
            .windows(2)
            .all(|w| w[0].send_time <= w[1].send_time));
        assert!(out
            .requests
            .windows(2)
            .all(|w| w[0].client_send <= w[1].client_send));
    }

    #[test]
    fn digest_retention_matches_full() {
        let full = run_sharded(partitioned_cfg(60, 2), 2);
        let digest = Simulator::new(partitioned_cfg(60, 2))
            .unwrap()
            .run_with(&SimOptions {
                shards: 2,
                retention: Retention::Digest,
            });
        assert_eq!(digest.digest, full.digest);
        assert_eq!(digest.stats.completed, full.stats.completed);
        assert_eq!(digest.stats.issued, full.stats.issued);
        assert_eq!(digest.stats.sim_events, full.stats.sim_events);
        assert_eq!(digest.stats.mean_rt_ms, full.stats.mean_rt_ms);
        // Digest mode keeps no streams — that is its point.
        assert!(digest.requests.is_empty());
        assert!(digest.lifecycle.is_empty());
        assert!(digest.messages.is_empty());
        // But samples survive in both modes.
        assert_eq!(digest.samples, full.samples);
    }

    #[test]
    fn single_partition_is_the_legacy_engine() {
        let mut cfg = SystemConfig::rubbos_baseline(60);
        cfg.duration = SimDuration::from_secs(6);
        cfg.warmup = SimDuration::from_secs(2);
        let serial = Simulator::new(cfg.clone()).unwrap().run();
        let threaded = Simulator::new(cfg).unwrap().run_with(&SimOptions {
            shards: 8,
            retention: Retention::Full,
        });
        assert_eq!(serial.digest, threaded.digest);
        assert_eq!(serial.requests, threaded.requests);
        assert_eq!(serial.samples, threaded.samples);
    }

    #[test]
    fn cell_config_conserves_resources() {
        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.partitions = 3;
        for t in &mut cfg.tiers {
            t.cores = 7;
            t.workers = 50;
        }
        let cells: Vec<SystemConfig> = (0..3).map(|i| cell_config(&cfg, i)).collect();
        for ti in 0..cfg.tiers.len() {
            let cores: u32 = cells.iter().map(|c| c.tiers[ti].cores).sum();
            let workers: usize = cells.iter().map(|c| c.tiers[ti].workers).sum();
            assert_eq!(cores, 7, "tier {ti} cores conserved");
            assert_eq!(workers, 50, "tier {ti} workers conserved");
        }
        let users: u32 = cells.iter().map(|c| c.workload.users).sum();
        assert_eq!(users, 100);
        // Session id ranges tile 0..users without overlap.
        assert_eq!(session_base(100, 3, 0), 0);
        assert_eq!(session_base(100, 3, 1), 34);
        assert_eq!(session_base(100, 3, 2), 67);
    }
}

#[cfg(test)]
mod discipline_tests {
    use super::*;
    use crate::config::{QueueDiscipline, SystemConfig};

    fn cfg_with(discipline: QueueDiscipline, users: u32) -> SystemConfig {
        let mut cfg = SystemConfig::rubbos_baseline(users);
        for t in &mut cfg.tiers {
            t.discipline = discipline;
        }
        cfg.duration = SimDuration::from_secs(8);
        cfg.warmup = SimDuration::from_secs(3);
        cfg.workload.ramp_up = SimDuration::from_secs(2);
        cfg
    }

    #[test]
    fn single_core_dfcfs_equals_cfcfs() {
        // With one core per node the two disciplines are the same machine.
        let mut c = cfg_with(QueueDiscipline::Cfcfs, 40);
        let mut d = cfg_with(QueueDiscipline::Dfcfs, 40);
        for cfg in [&mut c, &mut d] {
            for t in &mut cfg.tiers {
                t.cores = 1;
            }
        }
        let out_c = Simulator::new(c).unwrap().run();
        let out_d = Simulator::new(d).unwrap().run();
        assert_eq!(out_c.digest, out_d.digest);
    }

    #[test]
    fn dfcfs_runs_and_differs_from_cfcfs_on_multicore() {
        let out_c = Simulator::new(cfg_with(QueueDiscipline::Cfcfs, 150))
            .unwrap()
            .run();
        let out_d = Simulator::new(cfg_with(QueueDiscipline::Dfcfs, 150))
            .unwrap()
            .run();
        assert!(out_d.stats.completed > 30);
        // Multicore nodes: steering arrivals to a fixed core while a
        // sibling idles must change the schedule.
        assert_ne!(out_c.digest, out_d.digest);
        // dFCFS wastes capacity it cannot steal back, so at equal load its
        // mean response time is no better than cFCFS.
        assert!(
            out_d.stats.mean_rt_ms >= out_c.stats.mean_rt_ms * 0.95,
            "dFCFS {} vs cFCFS {}",
            out_d.stats.mean_rt_ms,
            out_c.stats.mean_rt_ms
        );
    }
}

#[cfg(test)]
mod bursty_tests {
    use super::*;
    use crate::config::{SystemConfig, WorkloadConfig};

    fn bursty_cfg(base: f64, burst: f64, secs: u64) -> SystemConfig {
        let mut cfg = SystemConfig::rubbos_baseline(1);
        cfg.workload = WorkloadConfig::bursty(
            base,
            burst,
            SimDuration::from_secs(2),
            SimDuration::from_secs(4),
        );
        cfg.duration = SimDuration::from_secs(secs);
        cfg.warmup = SimDuration::from_secs(2);
        cfg
    }

    #[test]
    fn bursty_rate_sits_between_base_and_burst() {
        let out = Simulator::new(bursty_cfg(60.0, 240.0, 40)).unwrap().run();
        let secs = out.end_time.as_secs_f64();
        let arrival_rate = out.stats.issued as f64 / secs;
        assert!(
            arrival_rate > 60.0 * 1.02 && arrival_rate < 240.0 * 0.98,
            "MMPP arrival rate {arrival_rate} should sit strictly between the phases"
        );
    }

    #[test]
    fn burst_windows_modulate_arrivals() {
        let out = Simulator::new(bursty_cfg(40.0, 400.0, 40)).unwrap().run();
        // Bucket arrivals per second; the on/off modulation must make the
        // busiest second clearly hotter than the average second.
        let mut per_sec = [0u32; 41];
        for r in &out.requests {
            let s = (r.client_send.as_micros() / 1_000_000) as usize;
            if let Some(slot) = per_sec.get_mut(s) {
                *slot += 1;
            }
        }
        let max = *per_sec.iter().max().unwrap_or(&0) as f64;
        let avg = per_sec.iter().map(|&c| c as f64).sum::<f64>() / per_sec.len() as f64;
        assert!(
            max > avg * 1.8,
            "expected bursts: max/sec {max} vs avg/sec {avg}"
        );
    }

    #[test]
    fn bursty_is_partition_invariant_in_distribution() {
        // The phase clock is shared across cells, so a partitioned run
        // bursts at the same instants; shard count never changes output.
        let mut cfg = bursty_cfg(80.0, 320.0, 20);
        cfg.partitions = 2;
        for t in &mut cfg.tiers {
            t.cores = 4;
            t.workers = t.workers.max(8);
        }
        let a = Simulator::new(cfg.clone()).unwrap().run_with(&SimOptions {
            shards: 1,
            retention: Retention::Full,
        });
        let b = Simulator::new(cfg).unwrap().run_with(&SimOptions {
            shards: 2,
            retention: Retention::Full,
        });
        assert_eq!(a.digest, b.digest);
        assert!(a.stats.issued > 0);
    }
}
