//! RUBBoS closed-loop workload generation.
//!
//! RUBBoS emulates a Slashdot-style bulletin board: a fixed population of
//! users (the "workload" number in the paper) who each loop forever —
//! think, issue one of the 24 interactions, wait for the reply, think again.

use crate::config::WorkloadConfig;
use crate::types::{Interaction, SessionId, INTERACTIONS};
use mscope_sim::{SimDuration, SimRng, SimTime};

/// Stateful workload generator; one per run.
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: WorkloadConfig,
    rng: SimRng,
    weights: Vec<f64>,
}

impl Workload {
    /// Creates the generator with its own RNG stream; weights reflect the
    /// configured [`WorkloadMix`](crate::config::WorkloadMix).
    pub fn new(cfg: WorkloadConfig, rng: SimRng) -> Self {
        let weights = INTERACTIONS
            .iter()
            .map(|s| s.weight * cfg.mix.weight_factor(s.rw))
            .collect();
        Workload { cfg, rng, weights }
    }

    /// The workload configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// First-request instants for every session, staggered uniformly over
    /// the ramp-up window so the run does not start with a thundering herd.
    pub fn initial_arrivals(&mut self) -> Vec<(SimTime, SessionId)> {
        let ramp_us = self.cfg.ramp_up.as_micros().max(1);
        (0..self.cfg.users)
            .map(|i| {
                let at = SimTime::from_micros(self.rng.uniform_u64(0, ramp_us - 1));
                (at, SessionId(i))
            })
            .collect()
    }

    /// Draws the next interaction for a session from the RUBBoS mix.
    pub fn next_interaction(&mut self) -> Interaction {
        Interaction {
            idx: self.rng.weighted_index(&self.weights),
        }
    }

    /// Draws an exponential interarrival gap for an open-loop process at
    /// `rate_rps`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_rps` is not positive.
    pub fn interarrival(&mut self, rate_rps: f64) -> SimDuration {
        assert!(rate_rps > 0.0, "open-loop rate must be positive");
        SimDuration::from_secs_f64(self.rng.exponential(1.0 / rate_rps))
    }

    /// Draws an exponential think time.
    pub fn think_time(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.exponential(self.cfg.think_time.as_secs_f64()))
    }

    /// Draws a log-normal service demand with the given mean and CV,
    /// clamped below at 1 µs so bursts always take time.
    pub fn demand(&mut self, mean: SimDuration, cv: f64) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        let sample = self.rng.lognormal_mean_cv(mean.as_micros() as f64, cv);
        SimDuration::from_micros((sample.round() as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RwKind;

    fn workload(users: u32) -> Workload {
        Workload::new(WorkloadConfig::rubbos(users), SimRng::seed_from(11))
    }

    #[test]
    fn initial_arrivals_cover_ramp() {
        let mut w = workload(1000);
        let arrivals = w.initial_arrivals();
        assert_eq!(arrivals.len(), 1000);
        let ramp = w.config().ramp_up;
        assert!(arrivals.iter().all(|(t, _)| *t < SimTime::ZERO + ramp));
        // Sessions are all distinct.
        let mut ids: Vec<u32> = arrivals.iter().map(|(_, s)| s.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn interaction_mix_matches_weights() {
        let mut w = workload(1);
        let n = 50_000;
        let mut writes = 0usize;
        for _ in 0..n {
            if w.next_interaction().rw() == RwKind::Write {
                writes += 1;
            }
        }
        let frac = writes as f64 / n as f64;
        assert!((0.07..0.17).contains(&frac), "write fraction {frac}");
    }

    #[test]
    fn think_time_mean_close_to_config() {
        let mut w = workload(1);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| w.think_time().as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 7.0).abs() < 0.3, "mean think {mean}");
    }

    #[test]
    fn demand_positive_and_near_mean() {
        let mut w = workload(1);
        let mean = SimDuration::from_micros(800);
        let n = 20_000;
        let mut total = 0u64;
        for _ in 0..n {
            let d = w.demand(mean, 0.5);
            assert!(d.as_micros() >= 1);
            total += d.as_micros();
        }
        let observed = total as f64 / n as f64;
        assert!((observed - 800.0).abs() / 800.0 < 0.05, "mean {observed}");
        assert_eq!(w.demand(SimDuration::ZERO, 0.5), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = workload(10);
        let mut b = workload(10);
        for _ in 0..100 {
            assert_eq!(a.next_interaction(), b.next_interaction());
            assert_eq!(a.think_time(), b.think_time());
        }
    }
}

#[cfg(test)]
mod mix_tests {
    use super::*;
    use crate::config::WorkloadMix;
    use crate::types::RwKind;

    #[test]
    fn browse_only_mix_never_writes() {
        let mut cfg = WorkloadConfig::rubbos_browse_only(10);
        cfg.mix = WorkloadMix::BrowseOnly;
        let mut w = Workload::new(cfg, SimRng::seed_from(3));
        for _ in 0..5_000 {
            assert_eq!(w.next_interaction().rw(), RwKind::Read);
        }
    }

    #[test]
    fn write_heavy_mix_triples_write_share() {
        let base = {
            let w0 = Workload::new(WorkloadConfig::rubbos(10), SimRng::seed_from(4));
            let mut w0 = w0;
            let n = 30_000;
            (0..n)
                .filter(|_| w0.next_interaction().rw() == RwKind::Write)
                .count() as f64
                / n as f64
        };
        let heavy = {
            let mut cfg = WorkloadConfig::rubbos(10);
            cfg.mix = WorkloadMix::WriteHeavy;
            let mut w = Workload::new(cfg, SimRng::seed_from(4));
            let n = 30_000;
            (0..n)
                .filter(|_| w.next_interaction().rw() == RwKind::Write)
                .count() as f64
                / n as f64
        };
        assert!(heavy > 2.0 * base, "heavy {heavy:.3} vs base {base:.3}");
    }
}
