//! Experiment configuration: topology, resources, workload, monitoring
//! overhead, and the scenario presets used throughout the evaluation.

use crate::types::TierKind;
use mscope_sim::{SimDuration, SimTime};

/// Memory / page-cache behaviour of a node.
///
/// Dirty pages accumulate from application and log writes. A background
/// writeback cycle drains them cheaply (disk-only); if the dirty byte count
/// ever crosses `dirty_high_bytes`, the kernel's *forced recycling* kicks in:
/// it seizes CPU (the paper's scenario B root cause) until the count is back
/// at `dirty_low_bytes`.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Total RAM in bytes (reported by monitors).
    pub total_bytes: u64,
    /// Forced-recycle trigger threshold (bytes of dirty pages).
    pub dirty_high_bytes: u64,
    /// Forced recycle drains down to this level.
    pub dirty_low_bytes: u64,
    /// Period of the cheap background writeback cycle.
    pub writeback_period: SimDuration,
    /// Max bytes drained per background cycle (rate limiting; lets scenario
    /// presets starve writeback so dirty pages build up).
    pub writeback_max_bytes: u64,
    /// CPU-side throughput of forced recycling, bytes/second. Determines how
    /// long the CPU stays saturated during a recycle storm.
    pub recycle_rate: f64,
    /// Cores seized by the forced recycler while it runs.
    pub recycle_cores: u32,
}
mscope_serdes::json_struct!(MemoryConfig {
    total_bytes,
    dirty_high_bytes,
    dirty_low_bytes,
    writeback_period,
    writeback_max_bytes,
    recycle_rate,
    recycle_cores,
});

impl MemoryConfig {
    /// A roomy default that never triggers forced recycling during a normal
    /// run: 4 GiB RAM, high watermark 512 MiB, generous writeback.
    pub fn ample() -> Self {
        MemoryConfig {
            total_bytes: 4 << 30,
            dirty_high_bytes: 512 << 20,
            dirty_low_bytes: 64 << 20,
            writeback_period: SimDuration::from_millis(1000),
            writeback_max_bytes: 64 << 20,
            recycle_rate: 50e6,
            recycle_cores: 2,
        }
    }
}

/// Database commit-log flush behaviour (the paper's scenario A root cause).
///
/// Write transactions append `commit_bytes` to an in-memory log buffer; when
/// the buffer reaches `buffer_threshold` the DBMS flushes it to disk at
/// `flush_rate` bytes/second (much slower than sequential disk bandwidth —
/// log flushing is sync-heavy). While the flush is in progress and
/// `stall_writes` is set, committing transactions block holding their worker
/// thread, which is what propagates the stall upstream.
#[derive(Debug, Clone, PartialEq)]
pub struct LogFlushConfig {
    /// Buffer size that triggers a flush, in bytes.
    pub buffer_threshold: u64,
    /// Effective flush throughput in bytes/second.
    pub flush_rate: f64,
    /// Whether commits stall for the duration of the flush.
    pub stall_writes: bool,
    /// Whether *read* queries also stall while the flush runs — checkpoint
    /// IO starving the buffer pool's reads, the full §V-A effect.
    pub stall_reads: bool,
}
mscope_serdes::json_struct!(LogFlushConfig {
    buffer_threshold,
    flush_rate,
    stall_writes,
    stall_reads,
});

/// How a tier's cores pick up queued CPU bursts.
///
/// The distinction (after the multi-core scheduling literature, e.g. the
/// `carvalhof/sim` queueing simulator) is whether a queued burst may run on
/// *any* core that frees up, or is pinned at arrival to one core's private
/// queue — the RSS/partitioned design real NICs and some thread pools use,
/// which is cheaper to build but has strictly worse queueing behaviour
/// under skewed service times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// Centralized FCFS: one queue feeds every core; a burst runs on the
    /// first core to become idle. The historical (and default) behaviour.
    #[default]
    Cfcfs,
    /// Distributed FCFS: bursts are round-robin-assigned to a core on
    /// arrival and wait for *that* core even while others sit idle.
    Dfcfs,
}
mscope_serdes::json_enum!(QueueDiscipline { Cfcfs, Dfcfs });

/// Static configuration of one tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierConfig {
    /// Component-server software (determines log formats & monitor names).
    pub kind: TierKind,
    /// Number of replica nodes in this tier (requests round-robin).
    pub replicas: usize,
    /// Worker threads per node; a request holds one from admission until its
    /// reply departs upstream, including while blocked on downstream tiers.
    pub workers: usize,
    /// CPU cores per node.
    pub cores: u32,
    /// How queued CPU bursts are matched to cores.
    pub discipline: QueueDiscipline,
    /// Mean phase-1 CPU demand per request (before the downstream call).
    pub base_demand: SimDuration,
    /// Mean phase-2 CPU demand (after the downstream reply returns).
    pub phase2_demand: SimDuration,
    /// Extra mean CPU demand for write interactions (e.g. MySQL updates).
    pub write_demand_extra: SimDuration,
    /// Coefficient of variation of the (log-normal) demand distributions.
    pub demand_cv: f64,
    /// Disk write bandwidth in bytes/second (background writeback etc.).
    pub disk_write_bw: f64,
    /// Memory / dirty-page model.
    pub memory: MemoryConfig,
    /// Native log bytes an *unmodified* server writes per request (access
    /// log etc.). The event monitor roughly doubles this (paper Fig. 10).
    pub base_log_bytes: u64,
    /// Bytes a write transaction appends to the commit log (DB tiers).
    pub commit_bytes: u64,
    /// Commit-log flush model; `None` = commits never stall.
    pub log_flush: Option<LogFlushConfig>,
    /// Accept-queue (listen backlog) limit; requests arriving beyond
    /// `workers + accept_limit` are rejected with HTTP 503. `None` =
    /// unbounded (the default — the paper's testbed never rejects).
    pub accept_limit: Option<usize>,
}
mscope_serdes::json_struct!(TierConfig {
    kind,
    replicas,
    workers,
    cores,
    discipline,
    base_demand,
    phase2_demand,
    write_demand_extra,
    demand_cv,
    disk_write_bw,
    memory,
    base_log_bytes,
    commit_bytes,
    log_flush,
    accept_limit,
});

impl TierConfig {
    /// A sensible single-replica tier of the given kind with the scaled-down
    /// resource profile used across the evaluation presets.
    pub fn standard(kind: TierKind) -> Self {
        let ms = SimDuration::from_micros;
        match kind {
            TierKind::Apache => TierConfig {
                kind,
                replicas: 1,
                workers: 120,
                cores: 2,
                discipline: QueueDiscipline::Cfcfs,
                base_demand: ms(250),
                phase2_demand: ms(80),
                write_demand_extra: ms(0),
                demand_cv: 0.4,
                disk_write_bw: 100e6,
                memory: MemoryConfig::ample(),
                base_log_bytes: 210,
                commit_bytes: 0,
                log_flush: None,
                accept_limit: None,
            },
            TierKind::Tomcat => TierConfig {
                kind,
                replicas: 1,
                workers: 80,
                cores: 2,
                discipline: QueueDiscipline::Cfcfs,
                base_demand: ms(700),
                phase2_demand: ms(150),
                write_demand_extra: ms(200),
                demand_cv: 0.5,
                disk_write_bw: 100e6,
                memory: MemoryConfig::ample(),
                base_log_bytes: 180,
                commit_bytes: 0,
                log_flush: None,
                accept_limit: None,
            },
            TierKind::Cjdbc => TierConfig {
                kind,
                replicas: 1,
                workers: 80,
                cores: 2,
                discipline: QueueDiscipline::Cfcfs,
                base_demand: ms(180),
                phase2_demand: ms(60),
                write_demand_extra: ms(50),
                demand_cv: 0.4,
                disk_write_bw: 100e6,
                memory: MemoryConfig::ample(),
                base_log_bytes: 150,
                commit_bytes: 0,
                log_flush: None,
                accept_limit: None,
            },
            TierKind::Mysql => TierConfig {
                kind,
                replicas: 1,
                workers: 50,
                cores: 2,
                discipline: QueueDiscipline::Cfcfs,
                base_demand: ms(900),
                phase2_demand: ms(0),
                write_demand_extra: ms(1100),
                demand_cv: 0.6,
                disk_write_bw: 120e6,
                memory: MemoryConfig::ample(),
                base_log_bytes: 160,
                commit_bytes: 8192,
                // Large buffer + no stall: flushes are invisible in baseline.
                log_flush: Some(LogFlushConfig {
                    buffer_threshold: 1 << 30,
                    flush_rate: 120e6,
                    stall_writes: false,
                    stall_reads: false,
                }),
                accept_limit: None,
            },
        }
    }
}

/// Network model: a fixed per-hop, per-direction latency (the testbed's
/// gigabit LAN).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// One-way latency per hop.
    pub hop_latency: SimDuration,
}
mscope_serdes::json_struct!(NetworkConfig { hop_latency });

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            hop_latency: SimDuration::from_micros(150),
        }
    }
}

/// The RUBBoS closed-loop workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of concurrent emulated users — the paper's "workload" axis.
    /// (Ignored by the open-loop arrival process.)
    pub users: u32,
    /// Mean exponential think time between a response and the next request.
    pub think_time: SimDuration,
    /// Sessions start staggered uniformly over this ramp-up window.
    pub ramp_up: SimDuration,
    /// Interaction mix (RUBBoS ships a browse-only and a read/write mix).
    pub mix: WorkloadMix,
    /// How requests arrive.
    pub arrival: ArrivalProcess,
}
mscope_serdes::json_struct!(WorkloadConfig {
    users,
    think_time,
    ramp_up,
    mix,
    arrival
});

/// How the workload offers requests to the system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalProcess {
    /// Closed loop: each of `users` sessions waits for its response, thinks,
    /// then sends again — RUBBoS's model and the paper's. Under overload the
    /// offered rate self-throttles (coordinated omission).
    #[default]
    ClosedLoop,
    /// Open loop: Poisson arrivals at a fixed rate, independent of response
    /// times. Under overload the backlog grows without bound, exposing the
    /// full latency cost a closed loop hides.
    OpenLoop {
        /// Mean arrival rate, requests/second.
        rate_rps: f64,
    },
    /// Bursty open loop: a two-state Markov-modulated Poisson process that
    /// alternates between a quiet phase at `base_rps` and an on phase at
    /// `burst_rps`, with exponentially distributed phase lengths. This is
    /// the flash-crowd shape that stresses queue disciplines and the
    /// monitors' episode-resolution requirements.
    Bursty {
        /// Mean arrival rate during the quiet (off) phase, requests/second.
        base_rps: f64,
        /// Mean arrival rate during the burst (on) phase, requests/second.
        burst_rps: f64,
        /// Mean length of a burst episode.
        mean_on: SimDuration,
        /// Mean length of a quiet interval between bursts.
        mean_off: SimDuration,
    },
}
mscope_serdes::json_enum!(ArrivalProcess {
    ClosedLoop,
    OpenLoop { rate_rps },
    Bursty { base_rps, burst_rps, mean_on, mean_off },
});

/// RUBBoS's two standard interaction mixes, plus a stress variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadMix {
    /// The default read/write mix (~11 % writes).
    #[default]
    ReadWrite,
    /// Browsing-only: write interactions excluded entirely.
    BrowseOnly,
    /// Write-heavy stress mix: write interaction weights tripled.
    WriteHeavy,
}
mscope_serdes::json_enum!(WorkloadMix {
    ReadWrite,
    BrowseOnly,
    WriteHeavy
});

impl WorkloadMix {
    /// The weight multiplier this mix applies to an interaction.
    pub fn weight_factor(self, rw: crate::types::RwKind) -> f64 {
        use crate::types::RwKind;
        match (self, rw) {
            (WorkloadMix::ReadWrite, _) => 1.0,
            (WorkloadMix::BrowseOnly, RwKind::Read) => 1.0,
            (WorkloadMix::BrowseOnly, RwKind::Write) => 0.0,
            (WorkloadMix::WriteHeavy, RwKind::Read) => 1.0,
            (WorkloadMix::WriteHeavy, RwKind::Write) => 3.0,
        }
    }
}

impl WorkloadConfig {
    /// RUBBoS defaults: 7 s mean think time, 10 s ramp-up, read/write mix.
    pub fn rubbos(users: u32) -> Self {
        WorkloadConfig {
            users,
            think_time: SimDuration::from_secs(7),
            ramp_up: SimDuration::from_secs(10),
            mix: WorkloadMix::ReadWrite,
            arrival: ArrivalProcess::ClosedLoop,
        }
    }

    /// An open-loop Poisson workload at `rate_rps` with the default mix.
    pub fn open_loop(rate_rps: f64) -> Self {
        WorkloadConfig {
            arrival: ArrivalProcess::OpenLoop { rate_rps },
            ..Self::rubbos(1)
        }
    }

    /// A bursty (MMPP on/off) open-loop workload with the default mix.
    pub fn bursty(
        base_rps: f64,
        burst_rps: f64,
        mean_on: SimDuration,
        mean_off: SimDuration,
    ) -> Self {
        WorkloadConfig {
            arrival: ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                mean_on,
                mean_off,
            },
            ..Self::rubbos(1)
        }
    }

    /// RUBBoS browsing-only variant.
    pub fn rubbos_browse_only(users: u32) -> Self {
        WorkloadConfig {
            mix: WorkloadMix::BrowseOnly,
            ..Self::rubbos(users)
        }
    }
}

/// Event-monitor instrumentation and its modeled costs.
///
/// The paper reports 1–3 % CPU overhead, ~2 ms extra end-to-end latency and
/// roughly doubled disk-write volume; these parameters encode exactly those
/// mechanisms (per-record CPU, per-record log bytes, and Tomcat's extra
/// logging thread, which is why Tomcat sits at the 3 % end).
#[derive(Debug, Clone, PartialEq)]
pub struct MonitoringConfig {
    /// Master switch for the event mScopeMonitors (the paper's
    /// enabled/disabled comparison of Figs. 10–11).
    pub event_monitors: bool,
    /// Extra log bytes written per request per instrumented node (the four
    /// timestamps plus the request ID; ≈ doubles the native log volume).
    pub per_record_bytes: u64,
    /// Extra CPU per request per instrumented node for formatting/logging.
    pub per_record_cpu: SimDuration,
    /// Multiplier on `per_record_cpu` for Tomcat, whose monitor runs an
    /// extra thread recording variable-width downstream data.
    pub tomcat_cpu_multiplier: f64,
    /// Whether the SysViz-style passive network tap records every message
    /// (zero overhead on the system under test, like the real appliance).
    pub sysviz_tap: bool,
}
mscope_serdes::json_struct!(MonitoringConfig {
    event_monitors,
    per_record_bytes,
    per_record_cpu,
    tomcat_cpu_multiplier,
    sysviz_tap,
});

impl MonitoringConfig {
    /// Event monitors on, tap on — the standard milliScope deployment.
    pub fn enabled() -> Self {
        MonitoringConfig {
            event_monitors: true,
            per_record_bytes: 220,
            per_record_cpu: SimDuration::from_micros(25),
            tomcat_cpu_multiplier: 2.6,
            sysviz_tap: true,
        }
    }

    /// Unmodified servers (baseline for the overhead comparison).
    pub fn disabled() -> Self {
        MonitoringConfig {
            event_monitors: false,
            sysviz_tap: true,
            ..Self::enabled()
        }
    }
}

/// Extension fault injectors beyond the two headline scenarios — the other
/// VSB root causes the paper cites (JVM GC, DVFS) plus synthetic hogs used
/// by tests.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectorSpec {
    /// Stop-the-world garbage collection: every `period`, all cores of every
    /// node in `tier` are seized for `pause`.
    GcPause {
        /// Tier index.
        tier: usize,
        /// Interval between collections.
        period: SimDuration,
        /// Stop-the-world pause length.
        pause: SimDuration,
    },
    /// CPU frequency scaling: every `period`, the tier's clock drops to
    /// `slow_factor` (< 1.0) of nominal for `duration`.
    DvfsThrottle {
        /// Tier index.
        tier: usize,
        /// Interval between throttle episodes.
        period: SimDuration,
        /// Relative speed while throttled (e.g. 0.4).
        slow_factor: f64,
        /// Length of each throttle episode.
        duration: SimDuration,
    },
    /// One-shot CPU hog: seizes `cores` cores of tier at `at` for `duration`.
    CpuHog {
        /// Tier index.
        tier: usize,
        /// Start instant.
        at: SimTime,
        /// Cores seized.
        cores: u32,
        /// Hog duration.
        duration: SimDuration,
    },
    /// One-shot disk hog: submits a `bytes`-sized write burst at `at`.
    DiskHog {
        /// Tier index.
        tier: usize,
        /// Start instant.
        at: SimTime,
        /// Bytes written.
        bytes: u64,
    },
}
mscope_serdes::json_enum!(InjectorSpec {
    GcPause { tier, period, pause },
    DvfsThrottle { tier, period, slow_factor, duration },
    CpuHog { tier, at, cores, duration },
    DiskHog { tier, at, bytes },
});

/// Complete configuration of one simulated experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Tiers in pipeline order (index 0 faces the clients).
    pub tiers: Vec<TierConfig>,
    /// Network model.
    pub network: NetworkConfig,
    /// Workload model.
    pub workload: WorkloadConfig,
    /// Monitoring instrumentation and overhead model.
    pub monitoring: MonitoringConfig,
    /// Extra fault injectors.
    pub injectors: Vec<InjectorSpec>,
    /// Measured run length (after warm-up).
    pub duration: SimDuration,
    /// Warm-up excluded from derived statistics (records still collected).
    pub warmup: SimDuration,
    /// Base resource-sampling period (monitors replay these samples).
    pub sample_period: SimDuration,
    /// RNG seed; same seed → identical run.
    pub seed: u64,
    /// Number of logical cells the trial is partitioned into for the sharded
    /// engine. This is a **model** parameter — it slices users, cores,
    /// workers and rates into `partitions` independent cells — so it changes
    /// what is simulated; the *thread count* used to execute the cells is a
    /// separate, purely-performance knob ([`SimOptions`](crate::SimOptions))
    /// that never changes output.
    pub partitions: u32,
}
mscope_serdes::json_struct!(SystemConfig {
    tiers,
    network,
    workload,
    monitoring,
    injectors,
    duration,
    warmup,
    sample_period,
    seed,
    partitions,
});

impl SystemConfig {
    /// The paper's 4-tier RUBBoS deployment, healthy baseline: no bottleneck
    /// ever triggers. 7-minute trial like the paper (callers often shorten
    /// `duration` for tests).
    pub fn rubbos_baseline(users: u32) -> Self {
        SystemConfig {
            tiers: TierKind::classic_pipeline()
                .into_iter()
                .map(TierConfig::standard)
                .collect(),
            network: NetworkConfig::default(),
            workload: WorkloadConfig::rubbos(users),
            monitoring: MonitoringConfig::enabled(),
            injectors: Vec::new(),
            duration: SimDuration::from_secs(420),
            warmup: SimDuration::from_secs(15),
            sample_period: SimDuration::from_millis(50),
            seed: 0x5CC0_9E02,
            partitions: 1,
        }
    }

    /// The paper's Fig. 1 topology: 1 Apache, 2 Tomcat, 1 C-JDBC, 2 MySQL
    /// — the replicated variant of the baseline. Demands at the replicated
    /// tiers are unchanged; each replica simply takes half the traffic.
    pub fn rubbos_replicated(users: u32) -> Self {
        let mut cfg = Self::rubbos_baseline(users);
        for t in &mut cfg.tiers {
            if matches!(t.kind, TierKind::Tomcat | TierKind::Mysql) {
                t.replicas = 2;
            }
        }
        cfg
    }

    /// Scenario A (paper §V-A, Figs. 2/4/6/7): the MySQL commit-log buffer
    /// fills every few seconds and its flush saturates the database disk for
    /// hundreds of milliseconds, stalling commits and pushing queues back
    /// through every tier.
    pub fn scenario_db_io(users: u32) -> Self {
        let mut cfg = Self::rubbos_baseline(users);
        let db = cfg
            .tiers
            .iter_mut()
            .find(|t| t.kind == TierKind::Mysql)
            .expect("baseline always has a MySQL tier");
        db.log_flush = Some(LogFlushConfig {
            // ~1.4 MB/s of commit traffic at 8000 users → flush every ~3.5 s.
            buffer_threshold: 5 << 20,
            // Sync-heavy log flush: ~16 MB/s effective → ~320 ms stall.
            flush_rate: 16e6,
            stall_writes: true,
            stall_reads: true,
        });
        cfg
    }

    /// Scenario B (paper §V-B, Fig. 8): starved background writeback lets
    /// dirty pages pile up on the Apache and Tomcat nodes; forced recycling
    /// then seizes their CPUs for hundreds of milliseconds — at different
    /// times on each tier, producing the two differently-shaped peaks.
    pub fn scenario_dirty_page(users: u32) -> Self {
        let mut cfg = Self::rubbos_baseline(users);
        for t in &mut cfg.tiers {
            match t.kind {
                TierKind::Apache => {
                    t.memory = MemoryConfig {
                        total_bytes: 1 << 30,
                        dirty_high_bytes: 2_200_000,
                        dirty_low_bytes: 100_000,
                        writeback_period: SimDuration::from_secs(30),
                        writeback_max_bytes: 0,
                        recycle_rate: 8e6,
                        recycle_cores: 2,
                    };
                    // Apache also spools page-cache-dirtying content.
                    t.base_log_bytes = 420;
                }
                TierKind::Tomcat => {
                    t.memory = MemoryConfig {
                        total_bytes: 1 << 30,
                        dirty_high_bytes: 3_600_000,
                        dirty_low_bytes: 150_000,
                        writeback_period: SimDuration::from_secs(30),
                        writeback_max_bytes: 0,
                        recycle_rate: 10e6,
                        recycle_cores: 2,
                    };
                    t.base_log_bytes = 520;
                }
                _ => {}
            }
        }
        cfg
    }

    /// Open-loop burst scenario: no closed-loop self-throttling — a two-state
    /// MMPP alternates a sustainable base rate with 3× flash-crowd bursts
    /// (mean 2 s on, 8 s off) that transiently exceed the database tier's
    /// capacity, so queues build during each burst and drain between them.
    /// Runs partitioned (2 cells) to keep the sharded engine's slicing on
    /// the proof path of every trace obligation.
    pub fn scenario_open_burst(base_rps: f64) -> Self {
        let mut cfg = Self::rubbos_baseline(1);
        cfg.workload = WorkloadConfig::bursty(
            base_rps,
            base_rps * 3.0,
            SimDuration::from_secs(2),
            SimDuration::from_secs(8),
        );
        cfg.partitions = 2;
        cfg
    }

    /// Every shipped scenario preset by name, at the paper's 8000-user
    /// workload (or, for the open-loop scenario, its standard rate). This is
    /// the set `mscope-lint trace` proves clean and CI walks
    /// scenario-by-scenario; new presets must be added here so they enter
    /// the proof obligations.
    pub fn presets() -> Vec<(&'static str, SystemConfig)> {
        vec![
            ("rubbos_baseline", Self::rubbos_baseline(8000)),
            ("rubbos_replicated", Self::rubbos_replicated(8000)),
            ("scenario_db_io", Self::scenario_db_io(8000)),
            ("scenario_dirty_page", Self::scenario_dirty_page(8000)),
            ("scenario_open_burst", Self::scenario_open_burst(800.0)),
        ]
    }

    /// Total nodes across all tiers.
    pub fn node_count(&self) -> usize {
        self.tiers.iter().map(|t| t.replicas).sum()
    }

    /// End of the measured portion (`warmup + duration`).
    pub fn end_time(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.duration
    }

    /// Validates internal consistency; returns a human-readable description
    /// of the first problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` when the topology is empty, any tier has zero
    /// replicas/workers/cores, a demand CV is negative, an injector
    /// references a missing tier, the sample period is zero, or the
    /// partition count is out of range (1–64, and no larger than any
    /// tier's core or worker count).
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("topology has no tiers".into());
        }
        for (i, t) in self.tiers.iter().enumerate() {
            if t.replicas == 0 {
                return Err(format!("tier {i} ({}) has zero replicas", t.kind));
            }
            if t.workers == 0 {
                return Err(format!("tier {i} ({}) has zero workers", t.kind));
            }
            if t.cores == 0 {
                return Err(format!("tier {i} ({}) has zero cores", t.kind));
            }
            if t.demand_cv < 0.0 {
                return Err(format!("tier {i} ({}) has negative demand CV", t.kind));
            }
            if t.disk_write_bw <= 0.0 {
                return Err(format!(
                    "tier {i} ({}) has non-positive disk bandwidth",
                    t.kind
                ));
            }
            if t.memory.dirty_low_bytes > t.memory.dirty_high_bytes {
                return Err(format!("tier {i} ({}) dirty watermarks inverted", t.kind));
            }
            if let Some(lf) = &t.log_flush {
                if lf.flush_rate <= 0.0 {
                    return Err(format!(
                        "tier {i} ({}) log flush rate must be positive",
                        t.kind
                    ));
                }
            }
        }
        match self.workload.arrival {
            ArrivalProcess::ClosedLoop => {
                if self.workload.users == 0 {
                    return Err("workload has zero users".into());
                }
                if self.workload.think_time.is_zero() {
                    return Err("think time must be non-zero".into());
                }
            }
            ArrivalProcess::OpenLoop { rate_rps } => {
                if rate_rps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err("open-loop rate must be positive".into());
                }
            }
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                mean_on,
                mean_off,
            } => {
                let positive = |r: f64| r.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater);
                if !positive(base_rps) || !positive(burst_rps) {
                    return Err("bursty arrival rates must be positive".into());
                }
                if mean_on.is_zero() || mean_off.is_zero() {
                    return Err("bursty phase lengths must be non-zero".into());
                }
            }
        }
        if self.sample_period.is_zero() {
            return Err("sample period must be non-zero".into());
        }
        if self.partitions == 0 {
            return Err("partitions must be at least 1".into());
        }
        if self.partitions > 64 {
            return Err(format!(
                "partitions {} exceed the supported maximum of 64",
                self.partitions
            ));
        }
        if self.partitions > 1 {
            // Each cell must receive at least one core and one worker per
            // tier, or the sliced sub-systems could not make progress.
            for (i, t) in self.tiers.iter().enumerate() {
                if u64::from(t.cores) < u64::from(self.partitions) {
                    return Err(format!(
                        "tier {i} ({}) has fewer cores ({}) than partitions ({})",
                        t.kind, t.cores, self.partitions
                    ));
                }
                if (t.workers as u64) < u64::from(self.partitions) {
                    return Err(format!(
                        "tier {i} ({}) has fewer workers ({}) than partitions ({})",
                        t.kind, t.workers, self.partitions
                    ));
                }
            }
        }
        for inj in &self.injectors {
            let tier = match inj {
                InjectorSpec::GcPause { tier, .. }
                | InjectorSpec::DvfsThrottle { tier, .. }
                | InjectorSpec::CpuHog { tier, .. }
                | InjectorSpec::DiskHog { tier, .. } => *tier,
            };
            if tier >= self.tiers.len() {
                return Err(format!("injector references missing tier {tier}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        let cfg = SystemConfig::rubbos_baseline(1000);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.tiers.len(), 4);
        assert_eq!(cfg.node_count(), 4);
        assert_eq!(cfg.end_time(), SimTime::ZERO + SimDuration::from_secs(435));
    }

    #[test]
    fn presets_are_named_uniquely_and_validate() {
        let presets = SystemConfig::presets();
        assert_eq!(presets.len(), 5);
        for (name, cfg) in &presets {
            assert!(cfg.validate().is_ok(), "preset {name} validates");
        }
        let mut names: Vec<&str> = presets.iter().map(|(n, _)| *n).collect();
        names.dedup();
        assert_eq!(names.len(), presets.len(), "preset names are unique");
    }

    #[test]
    fn scenarios_differ_from_baseline_only_where_expected() {
        let base = SystemConfig::rubbos_baseline(8000);
        let a = SystemConfig::scenario_db_io(8000);
        let b = SystemConfig::scenario_dirty_page(8000);
        assert!(a.validate().is_ok());
        assert!(b.validate().is_ok());
        // Scenario A only touches the MySQL flush config.
        assert_eq!(a.tiers[0], base.tiers[0]);
        assert_ne!(a.tiers[3].log_flush, base.tiers[3].log_flush);
        assert!(a.tiers[3].log_flush.as_ref().unwrap().stall_writes);
        // Scenario B only touches web/app memory.
        assert_eq!(b.tiers[3], base.tiers[3]);
        assert_ne!(b.tiers[0].memory, base.tiers[0].memory);
        assert_ne!(b.tiers[1].memory, base.tiers[1].memory);
    }

    #[test]
    fn validation_catches_errors() {
        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.tiers[0].workers = 0;
        assert!(cfg.validate().unwrap_err().contains("zero workers"));

        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.tiers.clear();
        assert!(cfg.validate().unwrap_err().contains("no tiers"));

        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.workload.users = 0;
        assert!(cfg.validate().unwrap_err().contains("zero users"));

        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.injectors.push(InjectorSpec::GcPause {
            tier: 99,
            period: SimDuration::from_secs(1),
            pause: SimDuration::from_millis(100),
        });
        assert!(cfg.validate().unwrap_err().contains("missing tier"));

        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.tiers[2].memory.dirty_low_bytes = u64::MAX;
        assert!(cfg.validate().unwrap_err().contains("watermarks"));

        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.partitions = 0;
        assert!(cfg.validate().unwrap_err().contains("partitions"));

        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.partitions = 65;
        assert!(cfg.validate().unwrap_err().contains("maximum of 64"));

        // Standard tiers have 2 cores: 4 partitions cannot be sliced.
        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.partitions = 4;
        assert!(cfg.validate().unwrap_err().contains("fewer cores"));

        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.workload = WorkloadConfig::bursty(
            100.0,
            0.0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert!(cfg.validate().unwrap_err().contains("bursty arrival rates"));

        let mut cfg = SystemConfig::rubbos_baseline(100);
        cfg.workload =
            WorkloadConfig::bursty(100.0, 300.0, SimDuration::ZERO, SimDuration::from_secs(1));
        assert!(cfg.validate().unwrap_err().contains("phase lengths"));
    }

    #[test]
    fn open_burst_preset_shape() {
        let cfg = SystemConfig::scenario_open_burst(800.0);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.partitions, 2);
        match cfg.workload.arrival {
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                ..
            } => {
                assert_eq!(base_rps, 800.0);
                assert_eq!(burst_rps, 2400.0);
            }
            other => panic!("expected bursty arrivals, got {other:?}"),
        }
    }

    #[test]
    fn monitoring_presets() {
        assert!(MonitoringConfig::enabled().event_monitors);
        assert!(!MonitoringConfig::disabled().event_monitors);
        // Cost parameters are identical so the comparison is apples-to-apples.
        let e = MonitoringConfig::enabled();
        let d = MonitoringConfig::disabled();
        assert_eq!(e.per_record_bytes, d.per_record_bytes);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = SystemConfig::scenario_db_io(4000);
        let json = mscope_serdes::to_string(&cfg);
        let back: SystemConfig = mscope_serdes::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
