//! Identifier newtypes and the tier/interaction vocabulary of the simulated
//! n-tier system.

use std::fmt;

/// Index of a tier in the pipeline (0 = front/web tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TierId(pub usize);
mscope_serdes::json_newtype!(TierId);

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

/// A node (component server) in the topology: `(tier, replica)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// The tier this node belongs to.
    pub tier: TierId,
    /// Replica index within the tier (0-based).
    pub replica: usize,
}
mscope_serdes::json_struct!(NodeId { tier, replica });

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.tier, self.replica)
    }
}

/// The component-server software a tier runs. Determines the native log
/// format its event mScopeMonitor produces and the default resource profile.
///
/// The paper's testbed (Fig. 1) is Apache → Tomcat → C-JDBC → MySQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierKind {
    /// Apache HTTP server (web tier).
    Apache,
    /// Apache Tomcat (application tier).
    Tomcat,
    /// C-JDBC database clustering middleware.
    Cjdbc,
    /// MySQL database server.
    Mysql,
}
mscope_serdes::json_enum!(TierKind {
    Apache,
    Tomcat,
    Cjdbc,
    Mysql
});

impl TierKind {
    /// Conventional lowercase name used in hostnames and log paths.
    pub fn name(self) -> &'static str {
        match self {
            TierKind::Apache => "apache",
            TierKind::Tomcat => "tomcat",
            TierKind::Cjdbc => "cjdbc",
            TierKind::Mysql => "mysql",
        }
    }

    /// The classic 4-tier pipeline of the paper.
    pub fn classic_pipeline() -> [TierKind; 4] {
        [
            TierKind::Apache,
            TierKind::Tomcat,
            TierKind::Cjdbc,
            TierKind::Mysql,
        ]
    }
}

impl fmt::Display for TierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The unique identifier milliScope's first-tier event monitor injects into
/// each request's URL (`?ID=XXXXXXXX`) and that propagates downstream as a
/// URL parameter / SQL comment.
///
/// The paper uses a *static, fixed-width* ID; we render it as 12 uppercase
/// hex digits.
///
/// # Examples
///
/// ```
/// use mscope_ntier::RequestId;
/// let id = RequestId(0xAB);
/// assert_eq!(id.to_string(), "0000000000AB");
/// assert_eq!(RequestId::parse("0000000000AB"), Some(id));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);
mscope_serdes::json_newtype!(RequestId);

impl RequestId {
    /// Width of the rendered hex form.
    pub const WIDTH: usize = 12;

    /// Parses the fixed-width hex form. Returns `None` if the text is not
    /// exactly [`RequestId::WIDTH`] hex digits.
    pub fn parse(s: &str) -> Option<RequestId> {
        if s.len() != Self::WIDTH {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RequestId)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:012X}", self.0)
    }
}

/// A closed-loop emulated user session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u32);
mscope_serdes::json_newtype!(SessionId);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session{}", self.0)
    }
}

/// Whether an interaction mutates state (drives DB commit-log traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RwKind {
    /// Read-only interaction.
    Read,
    /// Read-write interaction (ends in a DB commit).
    Write,
}
mscope_serdes::json_enum!(RwKind { Read, Write });

/// One of the RUBBoS benchmark's 24 interaction types.
///
/// RUBBoS emulates a Slashdot-like bulletin board; its workload is a weighted
/// mix of these interactions. The `weight` fields below follow the benchmark's
/// browse-heavy default transition behaviour (≈10 % writes), and the demand
/// multipliers encode which interactions are cheap static pages versus heavy
/// search/moderation queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interaction {
    /// Index into [`INTERACTIONS`].
    pub idx: usize,
}
mscope_serdes::json_struct!(Interaction { idx });

/// Static description of one interaction type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractionSpec {
    /// RUBBoS servlet name, e.g. `"StoriesOfTheDay"`.
    pub name: &'static str,
    /// Read or write.
    pub rw: RwKind,
    /// Relative frequency in the browse-heavy default mix.
    pub weight: f64,
    /// Service-demand multiplier applied to every tier's base demand.
    pub demand_factor: f64,
    /// How many tiers the interaction descends through (1 = static page
    /// served entirely by the web tier, 4 = full pipeline to the database).
    pub depth: usize,
}
impl mscope_serdes::ToJson for InteractionSpec {
    fn to_json(&self) -> mscope_serdes::Json {
        mscope_serdes::Json::obj([
            ("name", mscope_serdes::ToJson::to_json(self.name)),
            ("rw", mscope_serdes::ToJson::to_json(&self.rw)),
            ("weight", mscope_serdes::ToJson::to_json(&self.weight)),
            (
                "demand_factor",
                mscope_serdes::ToJson::to_json(&self.demand_factor),
            ),
            ("depth", mscope_serdes::ToJson::to_json(&self.depth)),
        ])
    }
}

impl mscope_serdes::FromJson for InteractionSpec {
    /// The `name` field holds a `&'static str`, so deserialization resolves
    /// the name back against the canonical [`INTERACTIONS`] table instead of
    /// allocating.
    fn from_json(v: &mscope_serdes::Json) -> Result<Self, mscope_serdes::JsonError> {
        let name: String = mscope_serdes::field(v, "name")?;
        INTERACTIONS
            .iter()
            .find(|spec| spec.name == name)
            .copied()
            .ok_or_else(|| mscope_serdes::JsonError::msg(format!("unknown interaction `{name}`")))
    }
}

/// The RUBBoS interaction table: 24 interactions, browse-heavy default mix.
///
/// Weights approximate RUBBoS's default read-mostly transition matrix
/// (~90 % reads); exact values are not published in the paper, only the
/// count (24) and examples ("view story").
pub const INTERACTIONS: [InteractionSpec; 24] = [
    InteractionSpec {
        name: "StoriesOfTheDay",
        rw: RwKind::Read,
        weight: 14.0,
        demand_factor: 1.0,
        depth: 4,
    },
    InteractionSpec {
        name: "ViewStory",
        rw: RwKind::Read,
        weight: 16.0,
        demand_factor: 1.1,
        depth: 4,
    },
    InteractionSpec {
        name: "ViewComment",
        rw: RwKind::Read,
        weight: 12.0,
        demand_factor: 0.9,
        depth: 4,
    },
    InteractionSpec {
        name: "BrowseCategories",
        rw: RwKind::Read,
        weight: 7.0,
        demand_factor: 0.7,
        depth: 4,
    },
    InteractionSpec {
        name: "BrowseStoriesByCategory",
        rw: RwKind::Read,
        weight: 8.0,
        demand_factor: 1.2,
        depth: 4,
    },
    InteractionSpec {
        name: "OlderStories",
        rw: RwKind::Read,
        weight: 6.0,
        demand_factor: 1.3,
        depth: 4,
    },
    InteractionSpec {
        name: "Search",
        rw: RwKind::Read,
        weight: 4.0,
        demand_factor: 2.0,
        depth: 4,
    },
    InteractionSpec {
        name: "SearchInStories",
        rw: RwKind::Read,
        weight: 2.5,
        demand_factor: 2.2,
        depth: 4,
    },
    InteractionSpec {
        name: "SearchInComments",
        rw: RwKind::Read,
        weight: 1.5,
        demand_factor: 2.5,
        depth: 4,
    },
    InteractionSpec {
        name: "SearchInUsers",
        rw: RwKind::Read,
        weight: 1.0,
        demand_factor: 1.8,
        depth: 4,
    },
    InteractionSpec {
        name: "ViewUserInfo",
        rw: RwKind::Read,
        weight: 3.0,
        demand_factor: 0.8,
        depth: 4,
    },
    InteractionSpec {
        name: "AuthorLogin",
        rw: RwKind::Read,
        weight: 1.2,
        demand_factor: 0.9,
        depth: 4,
    },
    InteractionSpec {
        name: "AuthorTasks",
        rw: RwKind::Read,
        weight: 0.8,
        demand_factor: 1.1,
        depth: 4,
    },
    InteractionSpec {
        name: "ReviewStories",
        rw: RwKind::Read,
        weight: 0.9,
        demand_factor: 1.4,
        depth: 4,
    },
    InteractionSpec {
        name: "ReviewSubmittedStories",
        rw: RwKind::Read,
        weight: 0.7,
        demand_factor: 1.4,
        depth: 4,
    },
    InteractionSpec {
        name: "StaticHome",
        rw: RwKind::Read,
        weight: 8.0,
        demand_factor: 0.3,
        depth: 1,
    },
    InteractionSpec {
        name: "StaticAbout",
        rw: RwKind::Read,
        weight: 2.0,
        demand_factor: 0.3,
        depth: 1,
    },
    InteractionSpec {
        name: "RegisterUser",
        rw: RwKind::Write,
        weight: 0.6,
        demand_factor: 1.2,
        depth: 4,
    },
    InteractionSpec {
        name: "SubmitStory",
        rw: RwKind::Write,
        weight: 1.5,
        demand_factor: 1.3,
        depth: 4,
    },
    InteractionSpec {
        name: "StoreStory",
        rw: RwKind::Write,
        weight: 1.4,
        demand_factor: 1.5,
        depth: 4,
    },
    InteractionSpec {
        name: "PostComment",
        rw: RwKind::Write,
        weight: 3.2,
        demand_factor: 1.2,
        depth: 4,
    },
    InteractionSpec {
        name: "StoreComment",
        rw: RwKind::Write,
        weight: 3.0,
        demand_factor: 1.4,
        depth: 4,
    },
    InteractionSpec {
        name: "ModerateComment",
        rw: RwKind::Write,
        weight: 1.0,
        demand_factor: 1.1,
        depth: 4,
    },
    InteractionSpec {
        name: "AcceptStory",
        rw: RwKind::Write,
        weight: 0.7,
        demand_factor: 1.3,
        depth: 4,
    },
];

impl Interaction {
    /// Looks up the static spec for this interaction.
    pub fn spec(self) -> &'static InteractionSpec {
        &INTERACTIONS[self.idx]
    }

    /// Servlet name, e.g. `"ViewStory"`.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Read or write.
    pub fn rw(self) -> RwKind {
        self.spec().rw
    }

    /// Finds an interaction by servlet name.
    pub fn by_name(name: &str) -> Option<Interaction> {
        INTERACTIONS
            .iter()
            .position(|s| s.name == name)
            .map(|idx| Interaction { idx })
    }

    /// All 24 interactions.
    pub fn all() -> impl Iterator<Item = Interaction> {
        (0..INTERACTIONS.len()).map(|idx| Interaction { idx })
    }
}

impl fmt::Display for Interaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_fixed_width_roundtrip() {
        for raw in [0u64, 1, 0xDEADBEEF, u64::MAX >> 16] {
            let id = RequestId(raw);
            let s = id.to_string();
            assert_eq!(s.len(), RequestId::WIDTH);
            assert_eq!(RequestId::parse(&s), Some(id));
        }
    }

    #[test]
    fn request_id_parse_rejects_bad_width_and_chars() {
        assert_eq!(RequestId::parse("AB"), None);
        assert_eq!(RequestId::parse("GGGGGGGGGGGG"), None);
        assert_eq!(RequestId::parse(""), None);
    }

    #[test]
    fn interaction_table_has_24_entries() {
        assert_eq!(INTERACTIONS.len(), 24, "RUBBoS defines 24 interactions");
        // Names are unique.
        let mut names: Vec<_> = INTERACTIONS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn mix_is_read_heavy() {
        let read: f64 = INTERACTIONS
            .iter()
            .filter(|s| s.rw == RwKind::Read)
            .map(|s| s.weight)
            .sum();
        let write: f64 = INTERACTIONS
            .iter()
            .filter(|s| s.rw == RwKind::Write)
            .map(|s| s.weight)
            .sum();
        let frac = write / (read + write);
        assert!(
            (0.05..0.20).contains(&frac),
            "write fraction {frac} outside RUBBoS-like range"
        );
    }

    #[test]
    fn interaction_lookup() {
        let v = Interaction::by_name("ViewStory").unwrap();
        assert_eq!(v.name(), "ViewStory");
        assert_eq!(v.rw(), RwKind::Read);
        assert_eq!(Interaction::by_name("NoSuchServlet"), None);
        assert_eq!(Interaction::all().count(), 24);
    }

    #[test]
    fn display_forms() {
        let n = NodeId {
            tier: TierId(2),
            replica: 1,
        };
        assert_eq!(n.to_string(), "tier2-1");
        assert_eq!(TierKind::Cjdbc.to_string(), "cjdbc");
        assert_eq!(SessionId(3).to_string(), "session3");
    }

    #[test]
    fn classic_pipeline_order() {
        let p = TierKind::classic_pipeline();
        assert_eq!(p[0], TierKind::Apache);
        assert_eq!(p[3], TierKind::Mysql);
    }
}
