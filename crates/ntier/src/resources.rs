//! Per-node resource models: CPU, disk, and memory (dirty page cache).
//!
//! Each model is passive — the engine drives it and schedules completion
//! events — but owns its own utilization accounting. Counters accumulate
//! continuously so the sampler can diff them at any boundary, exactly the
//! way real monitors diff `/proc` counters.

use mscope_sim::{SimDuration, SimTime};

/// Multi-core CPU with non-preemptive slot scheduling.
///
/// A "burst" occupies one core for its duration. When all cores are busy the
/// engine queues the burst. `speed` scales demand (DVFS model: 1.0 nominal).
///
/// Utilization accounting integrates busy-core-time and iowait-core-time;
/// call [`CpuModel::accumulate`] *before* any state change.
#[derive(Debug, Clone)]
pub struct CpuModel {
    cores: u32,
    /// Relative clock speed (demand divisor).
    speed: f64,
    /// Bursts currently occupying cores.
    running: u32,
    /// Jobs currently blocked on IO at this node (commit stalls etc.);
    /// drives the iowait counter.
    blocked_on_io: u32,
    last_acc: SimTime,
    busy_core_us: u64,
    iowait_core_us: u64,
}

impl CpuModel {
    /// Creates an idle CPU with the given core count.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: u32) -> Self {
        assert!(cores > 0, "cpu needs at least one core");
        CpuModel {
            cores,
            speed: 1.0,
            running: 0,
            blocked_on_io: 0,
            last_acc: SimTime::ZERO,
            busy_core_us: 0,
            iowait_core_us: 0,
        }
    }

    /// Core count.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Current relative speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Sets the relative clock speed (DVFS). Affects bursts started after
    /// the change.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive.
    pub fn set_speed(&mut self, now: SimTime, speed: f64) {
        assert!(speed > 0.0, "cpu speed must be positive");
        self.accumulate(now);
        self.speed = speed;
    }

    /// Bursts currently running.
    pub fn running(&self) -> u32 {
        self.running
    }

    /// `true` if a new burst can start immediately.
    pub fn has_free_core(&self) -> bool {
        self.running < self.cores
    }

    /// Integrates utilization counters up to `now`. Idempotent for equal
    /// `now`; must be called before every state change.
    pub fn accumulate(&mut self, now: SimTime) {
        let dt = (now - self.last_acc).as_micros();
        if dt == 0 {
            self.last_acc = now;
            return;
        }
        let busy = self.running.min(self.cores) as u64;
        self.busy_core_us += busy * dt;
        let idle = (self.cores as u64).saturating_sub(busy);
        // One writeback/commit thread's worth of iowait per idle core that
        // has a blocked job to wait for — classic iowait semantics: idle CPU
        // with outstanding IO.
        let iowait = idle.min(self.blocked_on_io as u64);
        self.iowait_core_us += iowait * dt;
        self.last_acc = now;
    }

    /// Starts a burst if a core is free; returns the burst's completion time
    /// (demand scaled by speed) or `None` if saturated.
    pub fn try_start(&mut self, now: SimTime, demand: SimDuration) -> Option<SimTime> {
        self.accumulate(now);
        if self.running >= self.cores {
            return None;
        }
        self.running += 1;
        Some(now + self.scaled(demand))
    }

    /// Scales a demand by the current speed.
    pub fn scaled(&self, demand: SimDuration) -> SimDuration {
        demand.mul_f64(1.0 / self.speed)
    }

    /// Marks a burst finished, freeing its core.
    ///
    /// # Panics
    ///
    /// Panics if no burst is running.
    pub fn finish(&mut self, now: SimTime) {
        self.accumulate(now);
        assert!(self.running > 0, "cpu finish with no running burst");
        self.running -= 1;
    }

    /// Registers a job entering an IO-blocked state.
    pub fn block_on_io(&mut self, now: SimTime) {
        self.accumulate(now);
        self.blocked_on_io += 1;
    }

    /// Registers a job leaving the IO-blocked state.
    ///
    /// # Panics
    ///
    /// Panics if nothing was blocked.
    pub fn unblock_io(&mut self, now: SimTime) {
        self.accumulate(now);
        assert!(self.blocked_on_io > 0, "io unblock with nothing blocked");
        self.blocked_on_io -= 1;
    }

    /// Cumulative busy core-microseconds.
    pub fn busy_core_us(&self) -> u64 {
        self.busy_core_us
    }

    /// Cumulative iowait core-microseconds.
    pub fn iowait_core_us(&self) -> u64 {
        self.iowait_core_us
    }
}

/// FCFS disk with separate accounting for busy time, bytes, and ops.
///
/// A write occupies the device for `bytes / bandwidth` (plus fixed per-op
/// latency) after any already-queued work. `submit_write_at_rate` lets
/// callers model slower effective throughput (sync-heavy commit-log
/// flushing) without changing the device's nominal bandwidth.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Nominal write bandwidth, bytes/µs.
    bw_per_us: f64,
    /// Fixed per-operation latency.
    op_latency: SimDuration,
    busy_until: SimTime,
    last_acc: SimTime,
    busy_us: u64,
    bytes_written: u64,
    ops: u64,
}

impl DiskModel {
    /// Creates a disk with `bandwidth` bytes/second and 100 µs per-op
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "disk bandwidth must be positive");
        DiskModel {
            bw_per_us: bandwidth / 1e6,
            op_latency: SimDuration::from_micros(100),
            busy_until: SimTime::ZERO,
            last_acc: SimTime::ZERO,
            busy_us: 0,
            bytes_written: 0,
            ops: 0,
        }
    }

    /// Integrates busy time up to `now`; call before every state change and
    /// at every sample boundary.
    pub fn accumulate(&mut self, now: SimTime) {
        if now <= self.last_acc {
            return;
        }
        // The device is busy from `last_acc` until `busy_until` (FCFS keeps
        // the busy period contiguous once work is queued).
        let busy_end = self.busy_until.min(now);
        if busy_end > self.last_acc {
            self.busy_us += (busy_end - self.last_acc).as_micros();
        }
        self.last_acc = now;
    }

    /// Queues a write at nominal bandwidth; returns its completion time.
    pub fn submit_write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.submit_write_at_rate(now, bytes, self.bw_per_us * 1e6)
    }

    /// Queues a write that proceeds at `rate` bytes/second (≤ nominal for
    /// sync-heavy patterns); returns its completion time.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn submit_write_at_rate(&mut self, now: SimTime, bytes: u64, rate: f64) -> SimTime {
        assert!(rate > 0.0, "disk write rate must be positive");
        self.accumulate(now);
        let start = self.busy_until.max(now);
        let dur =
            SimDuration::from_micros((bytes as f64 / (rate / 1e6)).ceil() as u64) + self.op_latency;
        self.busy_until = start + dur;
        self.bytes_written += bytes;
        self.ops += 1;
        self.busy_until
    }

    /// `true` if the device is busy at `t`.
    pub fn is_busy_at(&self, t: SimTime) -> bool {
        t < self.busy_until
    }

    /// Instant the current work queue drains.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Cumulative device-busy microseconds (up to the last `accumulate`).
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Cumulative bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Cumulative write operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// Dirty-page-cache model.
///
/// Writes land in memory as dirty pages; background writeback drains them
/// cheaply; crossing the high watermark triggers forced recycling (the
/// engine seizes CPU for the drain duration — the paper's scenario B).
#[derive(Debug, Clone)]
pub struct MemoryModel {
    total_bytes: u64,
    dirty_bytes: u64,
    dirty_high: u64,
    dirty_low: u64,
    /// Baseline resident set (non-cache), for the `mem_used` gauge.
    baseline_used: u64,
    /// Set while a forced recycle is in progress.
    recycling: bool,
}

/// Size of one page in the dirty-page accounting (4 KiB, like Linux).
pub const PAGE_BYTES: u64 = 4096;

impl MemoryModel {
    /// Creates the model with the given capacity and watermarks.
    ///
    /// # Panics
    ///
    /// Panics if watermarks are inverted or exceed total.
    pub fn new(total_bytes: u64, dirty_high: u64, dirty_low: u64) -> Self {
        assert!(dirty_low <= dirty_high, "dirty watermarks inverted");
        assert!(dirty_high <= total_bytes, "dirty high exceeds total memory");
        MemoryModel {
            total_bytes,
            dirty_bytes: 0,
            dirty_high,
            dirty_low,
            baseline_used: total_bytes / 5,
            recycling: false,
        }
    }

    /// Adds freshly written bytes to the dirty set. Returns `true` if this
    /// write pushed the dirty set over the high watermark (and no recycle is
    /// already running) — the engine's cue to start forced recycling.
    pub fn write(&mut self, bytes: u64) -> bool {
        self.dirty_bytes = (self.dirty_bytes + bytes).min(self.total_bytes);
        self.dirty_bytes >= self.dirty_high && !self.recycling
    }

    /// Background writeback: drains up to `max_bytes`; returns bytes
    /// actually drained (to be written to disk by the caller).
    pub fn background_writeback(&mut self, max_bytes: u64) -> u64 {
        let drained = self.dirty_bytes.min(max_bytes);
        self.dirty_bytes -= drained;
        drained
    }

    /// Begins forced recycling; returns the bytes that will be drained
    /// (down to the low watermark).
    ///
    /// # Panics
    ///
    /// Panics if a recycle is already in progress.
    pub fn begin_recycle(&mut self) -> u64 {
        assert!(!self.recycling, "recycle already in progress");
        self.recycling = true;
        self.dirty_bytes.saturating_sub(self.dirty_low)
    }

    /// Completes forced recycling, dropping the dirty set to the low
    /// watermark.
    pub fn end_recycle(&mut self) {
        debug_assert!(self.recycling, "end_recycle without begin");
        self.dirty_bytes = self.dirty_bytes.min(self.dirty_low);
        self.recycling = false;
    }

    /// `true` while a forced recycle runs.
    pub fn is_recycling(&self) -> bool {
        self.recycling
    }

    /// Current dirty bytes.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_bytes
    }

    /// Current dirty pages (4 KiB units).
    pub fn dirty_pages(&self) -> u64 {
        self.dirty_bytes / PAGE_BYTES
    }

    /// Approximate memory in use (baseline + dirty cache).
    pub fn used_bytes(&self) -> u64 {
        (self.baseline_used + self.dirty_bytes).min(self.total_bytes)
    }

    /// Total RAM.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn cpu_slots_and_busy_accounting() {
        let mut cpu = CpuModel::new(2);
        let d = SimDuration::from_millis(10);
        let c1 = cpu.try_start(ms(0), d).unwrap();
        assert_eq!(c1, ms(10));
        assert!(cpu.try_start(ms(0), d).is_some());
        assert!(cpu.try_start(ms(0), d).is_none(), "only 2 cores");
        cpu.finish(ms(10));
        cpu.finish(ms(10));
        cpu.accumulate(ms(20));
        // 2 cores busy for 10ms = 20_000 core-µs.
        assert_eq!(cpu.busy_core_us(), 20_000);
    }

    #[test]
    fn cpu_speed_scales_demand() {
        let mut cpu = CpuModel::new(1);
        cpu.set_speed(ms(0), 0.5);
        let done = cpu.try_start(ms(0), SimDuration::from_millis(10)).unwrap();
        assert_eq!(done, ms(20), "half speed doubles burst length");
        assert_eq!(
            cpu.scaled(SimDuration::from_millis(4)),
            SimDuration::from_millis(8)
        );
    }

    #[test]
    fn cpu_iowait_needs_idle_core_and_blocked_job() {
        let mut cpu = CpuModel::new(2);
        // One blocked job, both cores idle → 1 core of iowait.
        cpu.block_on_io(ms(0));
        cpu.accumulate(ms(10));
        assert_eq!(cpu.iowait_core_us(), 10_000);
        // Saturate the CPU: no idle core → no more iowait accrual.
        cpu.try_start(ms(10), SimDuration::from_millis(100))
            .unwrap();
        cpu.try_start(ms(10), SimDuration::from_millis(100))
            .unwrap();
        cpu.accumulate(ms(20));
        assert_eq!(cpu.iowait_core_us(), 10_000);
        cpu.unblock_io(ms(20));
    }

    #[test]
    #[should_panic(expected = "no running burst")]
    fn cpu_finish_underflow_panics() {
        CpuModel::new(1).finish(ms(1));
    }

    #[test]
    fn disk_fcfs_and_utilization() {
        let mut disk = DiskModel::new(1e6); // 1 MB/s → 1 byte/µs
        let done1 = disk.submit_write(ms(0), 1000); // 1000µs + 100µs op latency
        assert_eq!(done1, SimTime::from_micros(1100));
        // Second write queues behind the first.
        let done2 = disk.submit_write(ms(0), 1000);
        assert_eq!(done2, SimTime::from_micros(2200));
        assert!(disk.is_busy_at(ms(1)));
        assert!(!disk.is_busy_at(ms(3)));
        disk.accumulate(ms(10));
        assert_eq!(disk.busy_us(), 2200);
        assert_eq!(disk.bytes_written(), 2000);
        assert_eq!(disk.ops(), 2);
    }

    #[test]
    fn disk_gap_not_counted_busy() {
        let mut disk = DiskModel::new(1e6);
        disk.submit_write(ms(0), 900); // busy till 1000µs
        disk.accumulate(ms(5));
        disk.submit_write(ms(5), 900); // busy 5000..6000µs
        disk.accumulate(ms(10));
        assert_eq!(disk.busy_us(), 2000, "idle gap must not count");
    }

    #[test]
    fn disk_custom_rate_slows_flush() {
        let mut disk = DiskModel::new(100e6);
        let done = disk.submit_write_at_rate(ms(0), 1_000_000, 10e6);
        // 1 MB at 10 MB/s = 100 ms.
        assert_eq!(done, SimTime::from_micros(100_100));
    }

    #[test]
    fn memory_watermark_trigger_and_recycle() {
        let mut mem = MemoryModel::new(1 << 20, 8192, 4096);
        assert!(!mem.write(4096));
        assert!(mem.write(4096), "crossing high watermark triggers");
        assert_eq!(mem.dirty_pages(), 2);
        let drained = mem.begin_recycle();
        assert_eq!(drained, 4096);
        assert!(mem.is_recycling());
        // While recycling, further writes never re-trigger.
        assert!(!mem.write(100_000));
        mem.end_recycle();
        assert_eq!(mem.dirty_bytes(), 4096);
        assert!(!mem.is_recycling());
    }

    #[test]
    fn memory_background_writeback_drains() {
        let mut mem = MemoryModel::new(1 << 20, 1 << 19, 0);
        mem.write(10_000);
        assert_eq!(mem.background_writeback(4_000), 4_000);
        assert_eq!(mem.background_writeback(1 << 20), 6_000);
        assert_eq!(mem.dirty_bytes(), 0);
    }

    #[test]
    fn memory_used_gauge_tracks_dirty() {
        let mut mem = MemoryModel::new(1000 * PAGE_BYTES, 500 * PAGE_BYTES, 0);
        let before = mem.used_bytes();
        mem.write(10 * PAGE_BYTES);
        assert_eq!(mem.used_bytes() - before, 10 * PAGE_BYTES);
        assert_eq!(mem.total_bytes(), 1000 * PAGE_BYTES);
    }

    #[test]
    #[should_panic(expected = "watermarks inverted")]
    fn memory_bad_watermarks_panic() {
        MemoryModel::new(1 << 20, 100, 200);
    }
}
