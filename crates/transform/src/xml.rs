//! A minimal XML reader/writer.
//!
//! mScopeDataTransformer's middle representation is annotated XML (paper
//! §III-B2): parsers wrap log lines in `<log>`/`<entry>` elements and inject
//! field tags; the XMLtoCSV converter then consumes that XML. The upgraded
//! SAR monitor also emits XML directly. This module implements the subset
//! both sides need — elements, attributes, text, self-closing tags, and the
//! five standard entity escapes — with strict, fail-fast parsing.

use std::fmt;

/// An XML element tree node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element.
    pub text: String,
}

impl XmlNode {
    /// Creates an element with no attributes, children, or text.
    pub fn new(name: impl Into<String>) -> XmlNode {
        XmlNode {
            name: name.into(),
            ..XmlNode::default()
        }
    }

    /// Builder-style: adds an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> XmlNode {
        self.attrs.push((name.into(), value.into()));
        self
    }

    /// Builder-style: sets text content.
    pub fn with_text(mut self, text: impl Into<String>) -> XmlNode {
        self.text = text.into();
        self
    }

    /// Builder-style: appends a child.
    pub fn child(mut self, child: XmlNode) -> XmlNode {
        self.children.push(child);
        self
    }

    /// Attribute lookup.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given name.
    pub fn find(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All descendant elements (depth-first) with the given name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> Vec<&'a XmlNode> {
        let mut out = Vec::new();
        self.collect_named(name, &mut out);
        out
    }

    fn collect_named<'a>(&'a self, name: &str, out: &mut Vec<&'a XmlNode>) {
        for c in &self.children {
            if c.name == name {
                out.push(c);
            }
            c.collect_named(name, out);
        }
    }

    /// Serializes to a string with 1-space indentation.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = " ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (n, v) in &self.attrs {
            out.push(' ');
            out.push_str(n);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write(out, depth + 1);
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

impl fmt::Display for XmlNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml())
    }
}

/// Escapes the five standard XML entities.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
pub fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let semi = rest
            .find(';')
            .ok_or_else(|| XmlError::new("unterminated entity"))?;
        match &rest[..=semi] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => return Err(XmlError::new(format!("unknown entity `{other}`"))),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// XML parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    msg: String,
}

impl XmlError {
    fn new(msg: impl Into<String>) -> XmlError {
        XmlError { msg: msg.into() }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error: {}", self.msg)
    }
}

impl std::error::Error for XmlError {}

/// Parses a document containing exactly one root element.
///
/// # Errors
///
/// [`XmlError`] on malformed input (unclosed tags, bad entities, trailing
/// content, mismatched close tags).
pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
    let mut p = Parser {
        s: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws_and_prolog()?;
    let node = p.element()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(XmlError::new("trailing content after root element"));
    }
    Ok(node)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn starts_with(&self, pat: &str) -> bool {
        self.s[self.pos..].starts_with(pat.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn skip_ws_and_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                let end = self.find("?>")?;
                self.pos = end + 2;
            } else if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.pos = end + 3;
            } else {
                return Ok(());
            }
        }
    }

    fn find(&self, pat: &str) -> Result<usize, XmlError> {
        let hay = &self.s[self.pos..];
        hay.windows(pat.len())
            .position(|w| w == pat.as_bytes())
            .map(|i| self.pos + i)
            .ok_or_else(|| XmlError::new(format!("expected `{pat}`")))
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'-' || c == b'_' || c == b':' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::new("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(XmlError::new("expected `<`"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut node = XmlNode::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(XmlError::new("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let an = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(XmlError::new("expected `=` in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(XmlError::new("expected `\"` in attribute"));
                    }
                    self.pos += 1;
                    let end = self.find("\"")?;
                    let raw = String::from_utf8_lossy(&self.s[self.pos..end]).into_owned();
                    self.pos = end + 1;
                    node.attrs.push((an, unescape(&raw)?));
                }
                None => return Err(XmlError::new("unexpected end inside tag")),
            }
        }
        // Content: text and children until the matching close tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(XmlError::new(format!(
                        "mismatched close tag: expected `{name}`, got `{close}`"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(XmlError::new("expected `>` in close tag"));
                }
                self.pos += 1;
                // Trim in place — drops surrounding whitespace without
                // reallocating the node's accumulated text.
                node.text.truncate(node.text.trim_end().len());
                let lead = node.text.len() - node.text.trim_start().len();
                node.text.drain(..lead);
                return Ok(node);
            } else if self.starts_with("<!--") {
                let end = self.find("-->")?;
                self.pos = end + 3;
            } else if self.peek() == Some(b'<') {
                node.children.push(self.element()?);
            } else {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                if self.pos == self.s.len() {
                    return Err(XmlError::new(format!("unclosed element `{name}`")));
                }
                let raw = String::from_utf8_lossy(&self.s[start..self.pos]).into_owned();
                node.text.push_str(&unescape(&raw)?);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let doc = XmlNode::new("log")
            .attr("source", "a.log")
            .child(XmlNode::new("entry").child(XmlNode::new("time").with_text("00:00:01")));
        let xml = doc.to_xml();
        assert!(xml.contains("<log source=\"a.log\">"));
        assert!(xml.contains("<time>00:00:01</time>"));
    }

    #[test]
    fn roundtrip_simple() {
        let doc = XmlNode::new("root")
            .attr("a", "1")
            .child(XmlNode::new("item").with_text("x < y & z"))
            .child(XmlNode::new("empty"))
            .child(XmlNode::new("quoted").attr("v", "say \"hi\""));
        let back = parse(&doc.to_xml()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_self_closing_and_nested() {
        let input = r#"<a><b x="1"/><c><d>text</d></c></a>"#;
        let doc = parse(input).unwrap();
        assert_eq!(doc.children.len(), 2);
        assert_eq!(doc.find("b").unwrap().get_attr("x"), Some("1"));
        assert_eq!(doc.find("c").unwrap().find("d").unwrap().text, "text");
    }

    #[test]
    fn find_all_descends() {
        let input = "<r><g><cpu n=\"1\"/></g><g><cpu n=\"2\"/></g></r>";
        let doc = parse(input).unwrap();
        let cpus = doc.find_all("cpu");
        assert_eq!(cpus.len(), 2);
        assert_eq!(cpus[1].get_attr("n"), Some("2"));
    }

    #[test]
    fn prolog_and_comments_skipped() {
        let input = "<?xml version=\"1.0\"?>\n<!-- hi -->\n<r><!-- inner -->ok</r>";
        let doc = parse(input).unwrap();
        assert_eq!(doc.text, "ok");
    }

    #[test]
    fn escape_unescape_roundtrip() {
        let nasty = "a<b>&\"c'd&amp;";
        assert_eq!(unescape(&escape(nasty)).unwrap(), nasty);
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&unterminated").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("plain text").is_err());
        assert!(parse("<a x=1></a>").is_err());
    }

    #[test]
    fn text_whitespace_trimmed() {
        let doc = parse("<a>\n  hello  \n</a>").unwrap();
        assert_eq!(doc.text, "hello");
    }
}
