//! Parsing declarations and their execution engine.
//!
//! The paper separates *what to parse* from *how to ingest it* (§III-B1):
//! mScopeDataTransformer "maintains a mapping between input log files and
//! their specific mScopeParser [… and] instructions for how the specified
//! mScopeParser should inject semantics into its input logs", supporting
//! both line-sequence instructions and string-token instructions.
//!
//! A [`ParsingDeclaration`] is that mapping entry: a file, a parser
//! ([`ParserKind`]), a destination table, and constant fields to inject
//! (node name, tier, …). Executing a declaration yields the annotated XML
//! of §III-B2 — every log line wrapped in an `<entry>` with semantic child
//! tags.

use crate::error::TransformError;
use crate::pattern::{Pattern, Tok};
use crate::xml::{self, XmlNode};
use mscope_db::{ColumnType, Value};

/// Cheap line classifiers used by filter stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineMatcher {
    /// Matches empty / whitespace-only lines.
    Blank,
    /// Matches lines starting with the prefix.
    Prefix(String),
    /// Matches lines containing the substring.
    Contains(String),
}
mscope_serdes::json_enum!(LineMatcher { Blank, Prefix(a), Contains(a) });

impl LineMatcher {
    /// Tests a line.
    pub fn matches(&self, line: &str) -> bool {
        match self {
            LineMatcher::Blank => line.trim().is_empty(),
            LineMatcher::Prefix(p) => line.starts_with(p.as_str()),
            LineMatcher::Contains(c) => line.contains(c.as_str()),
        }
    }
}

/// A staged, instruction-driven text parser.
#[derive(Debug, Clone, PartialEq)]
pub struct ParserSpec {
    /// Human-readable parser name (e.g. `"SAR mScopeParser"`).
    pub name: String,
    /// Lines matching any of these are dropped before parsing (banners,
    /// repeated headers, blanks).
    pub filters: Vec<LineMatcher>,
    /// Patterns whose captures become sticky context merged into subsequent
    /// records (e.g. IOstat's standalone timestamp lines).
    pub context: Vec<Pattern>,
    /// Patterns that each produce one record per matching line.
    pub records: Vec<Pattern>,
    /// Line-sequence mode: blocks introduced by a marker line, with
    /// positional per-line patterns (`None` = skip that line).
    pub blocks: Option<BlockSpec>,
}
mscope_serdes::json_struct!(ParserSpec {
    name,
    filters,
    context,
    records,
    blocks
});

/// Line-sequence instructions: a marker pattern starts a block; the next
/// `lines.len()` lines are interpreted positionally.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Pattern recognizing (and capturing from) the block-start line.
    pub marker: Pattern,
    /// Positional patterns for the lines following the marker.
    pub lines: Vec<Option<Pattern>>,
}
mscope_serdes::json_struct!(BlockSpec { marker, lines });

/// Declarative mapping of an XML input to entries (the "direct XML" path a
/// modern SAR enables — paper §III-B2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlMapping {
    /// Element name that delimits one entry (e.g. `"timestamp"`).
    pub entry_element: String,
    /// `(attribute, field)` pairs read off the entry element itself.
    pub entry_attrs: Vec<(String, String)>,
    /// `(descendant element, attribute, field)` pairs read from within the
    /// entry.
    pub leaf_attrs: Vec<(String, String, String)>,
}
mscope_serdes::json_struct!(XmlMapping {
    entry_element,
    entry_attrs,
    leaf_attrs
});

/// How a file is parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum ParserKind {
    /// Multi-stage text parsing.
    Staged(ParserSpec),
    /// Direct XML mapping.
    XmlDirect(XmlMapping),
}
mscope_serdes::json_enum!(ParserKind { Staged(a), XmlDirect(a) });

/// One entry of the file → parser mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsingDeclaration {
    /// Path of the log file in the [`LogStore`](mscope_monitors::LogStore).
    pub path: String,
    /// Monitor that produced the file.
    pub monitor_id: String,
    /// Parser to apply.
    pub parser: ParserKind,
    /// Destination mScopeDB table.
    pub table: String,
    /// Constant `(field, value)` pairs injected into every entry (node
    /// name, tier index, …) — semantics the log itself does not carry.
    pub constants: Vec<(String, String)>,
}
mscope_serdes::json_struct!(ParsingDeclaration {
    path,
    monitor_id,
    parser,
    table,
    constants
});

impl ParsingDeclaration {
    /// Executes the declaration over file contents, producing the annotated
    /// `<log>` document.
    ///
    /// # Errors
    ///
    /// [`TransformError::UnparsedLine`] when a surviving line matches no
    /// instruction (format drift is an error, not silence); XML errors for
    /// the direct path.
    pub fn execute(&self, content: &str) -> Result<XmlNode, TransformError> {
        let entries = match &self.parser {
            ParserKind::Staged(spec) => self.run_staged(spec, content)?,
            ParserKind::XmlDirect(map) => self.run_xml(map, content)?,
        };
        let mut root = XmlNode::new("log")
            .attr("source", &self.path)
            .attr("monitor", &self.monitor_id)
            .attr("table", &self.table);
        root.children = entries;
        Ok(root)
    }

    fn make_entry(&self, ctx: &[(String, String)], fields: Vec<(String, String)>) -> XmlNode {
        let mut entry = XmlNode::new("entry");
        entry
            .children
            .reserve(self.constants.len() + ctx.len() + fields.len());
        for (k, v) in self.constants.iter().chain(ctx) {
            // perf: constants and context are shared across entries — each
            // entry owns one clone pair per inherited field.
            entry
                .children
                .push(XmlNode::new(k.clone()).with_text(v.clone()));
        }
        for (k, v) in fields {
            entry.children.push(XmlNode::new(k).with_text(v));
        }
        entry
    }

    fn run_staged(&self, spec: &ParserSpec, content: &str) -> Result<Vec<XmlNode>, TransformError> {
        // Upper bound: one entry per line. Record-style logs (the common
        // case) sit near it; block logs over-reserve by the block length.
        let mut entries = Vec::with_capacity(content.lines().count());
        let mut ctx: Vec<(String, String)> = Vec::new();
        // Block mode state: Some((captures, next line index)) while inside.
        let mut block: Option<(Vec<(String, String)>, usize)> = None;

        'lines: for (ln, line) in content.lines().enumerate() {
            if spec.filters.iter().any(|f| f.matches(line)) {
                continue;
            }
            if let Some(bs) = &spec.blocks {
                if let Some(caps) = bs.marker.match_line(line) {
                    // New block begins (flushing any incomplete previous one
                    // would hide truncation; incomplete blocks are dropped
                    // only at EOF, mirroring a tool killed mid-record).
                    block = Some((caps, 0));
                    continue;
                }
                if let Some((fields, idx)) = &mut block {
                    let Some(slot) = bs.lines.get(*idx) else {
                        return Err(TransformError::UnparsedLine {
                            file: self.path.clone(),
                            line_no: ln + 1,
                            line: line.to_string(),
                        });
                    };
                    if let Some(pat) = slot {
                        let caps =
                            pat.match_line(line)
                                .ok_or_else(|| TransformError::UnparsedLine {
                                    file: self.path.clone(),
                                    line_no: ln + 1,
                                    line: line.to_string(),
                                })?;
                        fields.extend(caps);
                    }
                    *idx += 1;
                    if *idx == bs.lines.len() {
                        if let Some((fields, _)) = block.take() {
                            entries.push(self.make_entry(&[], fields));
                        }
                    }
                    continue;
                }
            }
            for pat in &spec.context {
                if let Some(caps) = pat.match_line(line) {
                    for (k, v) in caps {
                        ctx.retain(|(ck, _)| *ck != k);
                        ctx.push((k, v));
                    }
                    continue 'lines;
                }
            }
            for pat in &spec.records {
                if let Some(caps) = pat.match_line(line) {
                    // The entry node borrows the shared context and takes the
                    // captures by value — no intermediate merged Vec.
                    entries.push(self.make_entry(&ctx, caps));
                    continue 'lines;
                }
            }
            return Err(TransformError::UnparsedLine {
                file: self.path.clone(),
                line_no: ln + 1,
                line: line.to_string(),
            });
        }
        Ok(entries)
    }

    fn run_xml(&self, map: &XmlMapping, content: &str) -> Result<Vec<XmlNode>, TransformError> {
        let doc = xml::parse(content).map_err(TransformError::Xml)?;
        let els = doc.find_all(&map.entry_element);
        let mut entries = Vec::with_capacity(els.len());
        for el in els {
            let mut fields: Vec<(String, String)> =
                Vec::with_capacity(map.entry_attrs.len() + map.leaf_attrs.len());
            for (attr, field) in &map.entry_attrs {
                if let Some(v) = el.get_attr(attr) {
                    // perf: extracted fields own their values — one pair per
                    // matched attribute, consumed by make_entry below.
                    fields.push((field.clone(), v.to_string()));
                }
            }
            for (elem, attr, field) in &map.leaf_attrs {
                if let Some(leaf) = el.find_all(elem).first() {
                    if let Some(v) = leaf.get_attr(attr) {
                        // perf: extracted fields own their values — one pair
                        // per matched attribute, consumed by make_entry below.
                        fields.push((field.clone(), v.to_string()));
                    }
                }
            }
            entries.push(self.make_entry(&[], fields));
        }
        Ok(entries)
    }
}

// ---------------------------------------------------------------------------
// Static validation — the declaration front of `mscope-lint`.
// ---------------------------------------------------------------------------

/// Severity of a statically detected declaration issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory: legal but suspicious.
    Warn,
    /// Broken: the pipeline refuses to run the declaration.
    Deny,
}

/// One statically detected problem in a declaration set, found by [`check`].
#[derive(Debug, Clone)]
pub struct DeclIssue {
    /// Rule identifier (e.g. `decl-missing-request-id`), stable for
    /// allowlisting; see DESIGN.md §Static analysis.
    pub rule: &'static str,
    /// Whether the issue blocks execution.
    pub severity: Severity,
    /// The declaration (``path` → table`) at fault.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

/// The statically knowable column set of a declaration: constants first
/// (the order [`make_entry`](ParsingDeclaration::execute) emits them), then
/// pattern captures or XML fields. Constants and wall-clock captures carry
/// a concrete type; plain captures and XML attributes are
/// [`ColumnType::Null`] — "no value seen yet", the bottom of the inference
/// lattice, meaning the type is unknown until runtime.
pub fn declared_columns(decl: &ParsingDeclaration) -> Vec<(String, ColumnType)> {
    let mut cols: Vec<(String, ColumnType)> = Vec::new();
    let push = |cols: &mut Vec<(String, ColumnType)>, name: &str, ty: ColumnType| {
        if !cols.iter().any(|(n, _)| n == name) {
            cols.push((name.to_string(), ty));
        }
    };
    for (k, v) in &decl.constants {
        // Mirror the importer: a constant that only ever infers Null is
        // widened to Text at CSV-write time.
        let ty = match Value::infer(v).column_type() {
            ColumnType::Null => ColumnType::Text,
            t => t,
        };
        push(&mut cols, k, ty);
    }
    let add_pattern = |cols: &mut Vec<(String, ColumnType)>, p: &Pattern| {
        for t in p.tokens() {
            match t {
                Tok::Wall(n) => push(cols, n, ColumnType::Timestamp),
                Tok::Cap(n) => push(cols, n, ColumnType::Null),
                _ => {}
            }
        }
    };
    match &decl.parser {
        ParserKind::Staged(spec) => {
            for p in spec.context.iter().chain(&spec.records) {
                add_pattern(&mut cols, p);
            }
            if let Some(bs) = &spec.blocks {
                add_pattern(&mut cols, &bs.marker);
                for p in bs.lines.iter().flatten() {
                    add_pattern(&mut cols, p);
                }
            }
        }
        ParserKind::XmlDirect(map) => {
            for (_, field) in &map.entry_attrs {
                push(&mut cols, field, ColumnType::Null);
            }
            for (_, _, field) in &map.leaf_attrs {
                push(&mut cols, field, ColumnType::Null);
            }
        }
    }
    cols
}

/// The wall-clock-anchored fields of a declaration: captures produced by
/// [`Tok::Wall`] tokens (typed [`ColumnType::Timestamp`] statically) plus,
/// for direct-XML declarations, fields the importer will infer as
/// timestamps from `HH:MM:SS.ffffff` attribute values. Used by the lint
/// trace front's clock-domain check: a declaration with no wall-anchored
/// field produces rows that cannot be aligned with any other monitor.
pub fn wall_fields(decl: &ParsingDeclaration) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push = |n: &str| {
        if !out.iter().any(|x| x == n) {
            out.push(n.to_string());
        }
    };
    match &decl.parser {
        ParserKind::Staged(spec) => {
            let pats = spec
                .context
                .iter()
                .chain(&spec.records)
                .chain(spec.blocks.iter().map(|b| &b.marker))
                .chain(spec.blocks.iter().flat_map(|b| b.lines.iter().flatten()));
            for p in pats {
                for t in p.tokens() {
                    if let Tok::Wall(n) = t {
                        push(n);
                    }
                }
            }
        }
        ParserKind::XmlDirect(map) => {
            // The XML path carries no static types; by convention the
            // entry element's captured attributes hold the wall clock
            // (sar's `<timestamp time="…">`). Report those so the trace
            // front can check the convention held.
            for (attr, field) in &map.entry_attrs {
                if attr == "time" || attr == "timestamp" {
                    push(field);
                }
            }
        }
    }
    out
}

/// Statically checks a declaration set. Per declaration: every pattern is
/// run through [`Pattern::issues`]; field sets that would collide in one
/// entry (`decl-duplicate-field`), rules that can never fire
/// (`decl-unreachable-rule`), empty field/element names
/// (`decl-empty-field`), and event tables that cannot carry the fixed-width
/// request ID needed for cross-tier joins (`decl-missing-request-id`) are
/// denied. Across declarations feeding one table, fields whose
/// narrowest-type lattice join degenerates to text are flagged
/// (`schema-conflict`).
pub fn check(decls: &[ParsingDeclaration]) -> Vec<DeclIssue> {
    let mut out = Vec::new();
    for d in decls {
        check_declaration(d, &mut out);
    }
    check_schema_conflicts(decls, &mut out);
    out
}

/// [`check`] as a hard gate: `Err` with the first deny-level issue as a
/// typed [`TransformError::BadDeclaration`]. Warn-level issues pass.
///
/// # Errors
///
/// [`TransformError::BadDeclaration`] naming the rule, declaration, and
/// reason.
pub fn validate(decls: &[ParsingDeclaration]) -> Result<(), TransformError> {
    for i in check(decls) {
        if i.severity == Severity::Deny {
            return Err(TransformError::BadDeclaration {
                rule: i.rule,
                subject: i.subject,
                reason: i.message,
            });
        }
    }
    Ok(())
}

fn subject_of(d: &ParsingDeclaration) -> String {
    format!("`{}` → {}", d.path, d.table)
}

fn deny(out: &mut Vec<DeclIssue>, rule: &'static str, subject: &str, message: String) {
    out.push(DeclIssue {
        rule,
        severity: Severity::Deny,
        subject: subject.to_string(),
        message,
    });
}

fn check_declaration(d: &ParsingDeclaration, out: &mut Vec<DeclIssue>) {
    let subj = subject_of(d);
    for (i, (k, _)) in d.constants.iter().enumerate() {
        if k.is_empty() {
            deny(
                out,
                "decl-empty-field",
                &subj,
                // perf: validation-time diagnostic — once per declaration.
                "constant with an empty field name".to_string(),
            );
        }
        if d.constants[..i].iter().any(|(prev, _)| prev == k) {
            deny(
                out,
                "decl-duplicate-field",
                &subj,
                // perf: validation-time diagnostic — once per declaration.
                format!("constant field `{k}` is declared twice"),
            );
        }
    }
    match &d.parser {
        ParserKind::Staged(spec) => check_staged(spec, d, &subj, out),
        ParserKind::XmlDirect(map) => check_xml(map, d, &subj, out),
    }
    if d.table.starts_with("event_") && !declared_columns(d).iter().any(|(n, _)| n == "request_id")
    {
        deny(
            out,
            "decl-missing-request-id",
            &subj,
            "event-log declaration captures no `request_id`; its rows cannot join across tiers"
                .to_string(),
        );
    }
}

fn check_staged(spec: &ParserSpec, d: &ParsingDeclaration, subj: &str, out: &mut Vec<DeclIssue>) {
    let n_block = spec.blocks.as_ref().map_or(0, |bs| 1 + bs.lines.len());
    let mut patterns: Vec<(String, &Pattern)> =
        Vec::with_capacity(spec.context.len() + spec.records.len() + n_block);
    for (i, p) in spec.context.iter().enumerate() {
        // perf: role labels for diagnostics — a handful per declaration.
        patterns.push((format!("context[{i}]"), p));
    }
    for (i, p) in spec.records.iter().enumerate() {
        // perf: role labels for diagnostics — a handful per declaration.
        patterns.push((format!("record[{i}]"), p));
    }
    if let Some(bs) = &spec.blocks {
        patterns.push(("block marker".to_string(), &bs.marker));
        for (i, p) in bs.lines.iter().enumerate() {
            if let Some(p) = p {
                // perf: role labels for diagnostics — a handful per declaration.
                patterns.push((format!("block line[{i}]"), p));
            }
        }
        if bs.lines.is_empty() {
            deny(
                out,
                "decl-unreachable-rule",
                subj,
                "block spec has no positional lines; every line after a marker is unparsable"
                    .to_string(),
            );
        }
    }

    let consts: Vec<&str> = d.constants.iter().map(|(k, _)| k.as_str()).collect();
    for (role, p) in &patterns {
        for (rule, msg) in p.issues() {
            // perf: validation-time diagnostic — once per declaration.
            deny(out, rule, subj, format!("{role} pattern `{p}`: {msg}"));
        }
        for n in p.capture_names() {
            if consts.contains(&n) {
                deny(
                    out,
                    "decl-duplicate-field",
                    subj,
                    // perf: validation-time diagnostic — once per declaration.
                    format!("{role} pattern `{p}` re-captures constant field `{n}`"),
                );
            }
        }
        // A rule whose lines the filter stage always drops can never fire:
        // a prefix filter covering the pattern's leading literal, or a
        // contains filter matching any literal the pattern requires.
        for f in &spec.filters {
            let shadowed = match f {
                LineMatcher::Prefix(pf) => matches!(
                    p.tokens().first(),
                    Some(Tok::Lit(l)) if l.starts_with(pf.as_str())
                ),
                LineMatcher::Contains(c) => p
                    .tokens()
                    .iter()
                    .any(|t| matches!(t, Tok::Lit(l) if l.contains(c.as_str()))),
                LineMatcher::Blank => false,
            };
            if shadowed {
                deny(
                    out,
                    "decl-unreachable-rule",
                    subj,
                    // perf: validation-time diagnostic — once per declaration.
                    format!("{role} pattern `{p}` only matches lines the filter {f:?} drops"),
                );
            }
        }
    }

    // Record-entry field collisions: entry = constants + sticky context +
    // record captures (constants are checked above).
    let ctx_caps: Vec<&str> = spec
        .context
        .iter()
        .flat_map(Pattern::capture_names)
        .collect();
    for (i, p) in spec.records.iter().enumerate() {
        for n in p.capture_names() {
            if ctx_caps.contains(&n) {
                deny(
                    out,
                    "decl-duplicate-field",
                    subj,
                    // perf: validation-time diagnostic — once per declaration.
                    format!("record[{i}] capture `{n}` collides with a context capture"),
                );
            }
        }
        if spec.records[..i].contains(p) {
            deny(
                out,
                "decl-unreachable-rule",
                subj,
                // perf: validation-time diagnostic — once per declaration.
                format!("record[{i}] `{p}` duplicates an earlier record rule"),
            );
        }
        if spec.context.contains(p) {
            deny(
                out,
                "decl-unreachable-rule",
                subj,
                // perf: validation-time diagnostic — once per declaration.
                format!(
                    "record[{i}] `{p}` is identical to a context pattern, which is tried first"
                ),
            );
        }
    }

    // Block-entry field collisions: entry = constants + marker + line caps.
    if let Some(bs) = &spec.blocks {
        let mut seen: Vec<&str> = Vec::new();
        let block_pats = std::iter::once(&bs.marker).chain(bs.lines.iter().flatten());
        for p in block_pats {
            for n in p.capture_names() {
                if seen.contains(&n) {
                    deny(
                        out,
                        "decl-duplicate-field",
                        subj,
                        // perf: validation-time diagnostic — once per declaration.
                        format!("block captures field `{n}` on more than one line"),
                    );
                }
                seen.push(n);
            }
        }
    }
}

fn check_xml(map: &XmlMapping, d: &ParsingDeclaration, subj: &str, out: &mut Vec<DeclIssue>) {
    if map.entry_element.is_empty() {
        deny(
            out,
            "decl-unreachable-rule",
            subj,
            "empty entry element name selects no entries".to_string(),
        );
    }
    let mut fields: Vec<&str> = d.constants.iter().map(|(k, _)| k.as_str()).collect();
    let named = map
        .entry_attrs
        .iter()
        .map(|(a, f)| (a.as_str(), f.as_str()))
        .chain(map.leaf_attrs.iter().map(|(e, a, f)| {
            if e.is_empty() {
                deny(
                    out,
                    "decl-empty-field",
                    subj,
                    format!("leaf mapping for field `{f}` names an empty element"),
                );
            }
            (a.as_str(), f.as_str())
        }))
        .collect::<Vec<_>>();
    for (attr, field) in named {
        if attr.is_empty() || field.is_empty() {
            deny(
                out,
                "decl-empty-field",
                subj,
                // perf: validation-time diagnostic — once per declaration.
                format!("XML mapping with empty attribute or field name (attr `{attr}`, field `{field}`)"),
            );
        }
        if fields.contains(&field) {
            deny(
                out,
                "decl-duplicate-field",
                subj,
                // perf: validation-time diagnostic — once per declaration.
                format!("XML mapping writes field `{field}` more than once per entry"),
            );
        }
        fields.push(field);
    }
}

/// Cross-declaration pass: two declarations feeding the same table must
/// agree on column types, or schema inference silently widens the column.
/// A join that degenerates to [`ColumnType::Text`] from non-text
/// contributors (e.g. one declaration's timestamp vs another's integer)
/// loses the numeric semantics every downstream query assumes.
/// Per-field fold state: name, join of known types, first contributor.
type FieldJoins = Vec<(String, ColumnType, String)>;

fn check_schema_conflicts(decls: &[ParsingDeclaration], out: &mut Vec<DeclIssue>) {
    let mut tables: Vec<(&str, FieldJoins)> = Vec::new();
    for d in decls {
        let cols = declared_columns(d);
        let idx = match tables.iter().position(|(t, _)| *t == d.table) {
            Some(i) => i,
            None => {
                tables.push((d.table.as_str(), Vec::new()));
                tables.len() - 1
            }
        };
        let entry = &mut tables[idx].1;
        for (name, ty) in cols {
            if ty == ColumnType::Null {
                continue; // unknown until runtime; nothing to conflict with
            }
            match entry.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, prev, first_subj)) => {
                    let joined = prev.unify(ty);
                    if prev.lossy_join(ty) {
                        out.push(DeclIssue {
                            rule: "schema-conflict",
                            severity: Severity::Deny,
                            subject: subject_of(d),
                            // perf: validation-time diagnostic — once per set.
                            message: format!(
                                "column `{}`.`{name}` is {ty} here but {prev} in {first_subj}; the lattice join degenerates to text",
                                d.table
                            ),
                        });
                    }
                    *prev = joined;
                }
                None => entry.push((name, ty, subject_of(d))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Tok;

    fn decl(parser: ParserKind) -> ParsingDeclaration {
        ParsingDeclaration {
            path: "test.log".into(),
            monitor_id: "m1".into(),
            parser,
            table: "t".into(),
            constants: vec![("node".into(), "apache0".into())],
        }
    }

    #[test]
    fn records_mode_with_filters() {
        let spec = ParserSpec {
            name: "test".into(),
            filters: vec![LineMatcher::Prefix("#".into()), LineMatcher::Blank],
            context: vec![],
            records: vec![Pattern::new(vec![
                Tok::cap("key"),
                Tok::lit("="),
                Tok::cap("val"),
            ])],
            blocks: None,
        };
        let doc = decl(ParserKind::Staged(spec))
            .execute("# header\n\na=1\nb=2\n")
            .unwrap();
        assert_eq!(doc.children.len(), 2);
        let e = &doc.children[0];
        assert_eq!(e.find("node").unwrap().text, "apache0", "constant injected");
        assert_eq!(e.find("key").unwrap().text, "a");
        assert_eq!(e.find("val").unwrap().text, "1");
        assert_eq!(doc.get_attr("table"), Some("t"));
    }

    #[test]
    fn unparsed_line_is_an_error() {
        let spec = ParserSpec {
            name: "strict".into(),
            filters: vec![],
            context: vec![],
            records: vec![Pattern::new(vec![Tok::lit("ok")])],
            blocks: None,
        };
        let err = decl(ParserKind::Staged(spec))
            .execute("ok\nBAD LINE\n")
            .unwrap_err();
        match err {
            TransformError::UnparsedLine { line_no, line, .. } => {
                assert_eq!(line_no, 2);
                assert_eq!(line, "BAD LINE");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn context_sticks_until_replaced() {
        let spec = ParserSpec {
            name: "ctx".into(),
            filters: vec![],
            context: vec![Pattern::new(vec![Tok::wall("time")])],
            records: vec![Pattern::new(vec![Tok::lit("v="), Tok::cap("v")])],
            blocks: None,
        };
        let doc = decl(ParserKind::Staged(spec))
            .execute("00:00:01.000000\nv=1\nv=2\n00:00:02.000000\nv=3\n")
            .unwrap();
        assert_eq!(doc.children.len(), 3);
        assert_eq!(
            doc.children[1].find("time").unwrap().text,
            "00:00:01.000000"
        );
        assert_eq!(
            doc.children[2].find("time").unwrap().text,
            "00:00:02.000000"
        );
    }

    #[test]
    fn block_mode_positional_lines() {
        let spec = ParserSpec {
            name: "blocks".into(),
            filters: vec![],
            context: vec![],
            records: vec![],
            blocks: Some(BlockSpec {
                marker: Pattern::new(vec![Tok::lit("=== "), Tok::cap("rec"), Tok::lit(" ===")]),
                lines: vec![
                    None,
                    Some(Pattern::new(vec![Tok::cap("a"), Tok::Ws, Tok::cap("b")])),
                ],
            }),
        };
        let doc = decl(ParserKind::Staged(spec))
            .execute("=== 1 ===\nheader junk\n10 20\n=== 2 ===\nheader junk\n30 40\n")
            .unwrap();
        assert_eq!(doc.children.len(), 2);
        assert_eq!(doc.children[0].find("a").unwrap().text, "10");
        assert_eq!(doc.children[1].find("b").unwrap().text, "40");
        assert_eq!(doc.children[0].find("rec").unwrap().text, "1");
    }

    #[test]
    fn incomplete_trailing_block_dropped() {
        let spec = ParserSpec {
            name: "blocks".into(),
            filters: vec![],
            context: vec![],
            records: vec![],
            blocks: Some(BlockSpec {
                marker: Pattern::new(vec![Tok::lit("M")]),
                lines: vec![Some(Pattern::new(vec![Tok::cap("x")]))],
            }),
        };
        let doc = decl(ParserKind::Staged(spec)).execute("M\n1\nM\n").unwrap();
        assert_eq!(doc.children.len(), 1, "truncated final block is dropped");
    }

    #[test]
    fn xml_direct_mapping() {
        let map = XmlMapping {
            entry_element: "timestamp".into(),
            entry_attrs: vec![("time".into(), "time".into())],
            leaf_attrs: vec![("cpu".into(), "user".into(), "cpu_user".into())],
        };
        let xml_in = "<sysstat><host><statistics>\
            <timestamp time=\"00:00:01.000000\"><cpu-load><cpu number=\"all\" user=\"12.5\"/></cpu-load></timestamp>\
            <timestamp time=\"00:00:02.000000\"><cpu-load><cpu number=\"all\" user=\"14.0\"/></cpu-load></timestamp>\
            </statistics></host></sysstat>";
        let doc = decl(ParserKind::XmlDirect(map)).execute(xml_in).unwrap();
        assert_eq!(doc.children.len(), 2);
        assert_eq!(
            doc.children[0].find("time").unwrap().text,
            "00:00:01.000000"
        );
        assert_eq!(doc.children[1].find("cpu_user").unwrap().text, "14.0");
    }

    #[test]
    fn xml_direct_rejects_bad_xml() {
        let map = XmlMapping {
            entry_element: "t".into(),
            entry_attrs: vec![],
            leaf_attrs: vec![],
        };
        assert!(matches!(
            decl(ParserKind::XmlDirect(map)).execute("<broken"),
            Err(TransformError::Xml(_))
        ));
    }

    // --- static validation -------------------------------------------------

    fn record_decl(records: Vec<Pattern>) -> ParsingDeclaration {
        decl(ParserKind::Staged(ParserSpec {
            name: "t".into(),
            filters: vec![],
            context: vec![],
            records,
            blocks: None,
        }))
    }

    fn rules_of(issues: &[DeclIssue]) -> Vec<&'static str> {
        issues.iter().map(|i| i.rule).collect()
    }

    #[test]
    fn clean_declaration_validates() {
        let d = record_decl(vec![Pattern::new(vec![Tok::lit("v="), Tok::cap("v")])]);
        assert!(check(std::slice::from_ref(&d)).is_empty());
        validate(&[d]).unwrap();
    }

    #[test]
    fn pattern_issues_surface_through_check() {
        let d = record_decl(vec![Pattern::new(vec![Tok::cap("a"), Tok::cap("b")])]);
        let issues = check(std::slice::from_ref(&d));
        assert_eq!(rules_of(&issues), vec!["pattern-adjacent-wildcards"]);
        assert!(matches!(
            validate(&[d]),
            Err(TransformError::BadDeclaration {
                rule: "pattern-adjacent-wildcards",
                ..
            })
        ));
    }

    #[test]
    fn capture_colliding_with_constant_denied() {
        // `node` is injected as a constant by `decl()`.
        let d = record_decl(vec![Pattern::new(vec![Tok::lit("n="), Tok::cap("node")])]);
        assert!(rules_of(&check(&[d])).contains(&"decl-duplicate-field"));
    }

    #[test]
    fn record_colliding_with_context_capture_denied() {
        let d = decl(ParserKind::Staged(ParserSpec {
            name: "t".into(),
            filters: vec![],
            context: vec![Pattern::new(vec![Tok::wall("time")])],
            records: vec![Pattern::new(vec![Tok::lit("t="), Tok::cap("time")])],
            blocks: None,
        }));
        assert!(rules_of(&check(&[d])).contains(&"decl-duplicate-field"));
    }

    #[test]
    fn duplicate_record_rule_unreachable() {
        let p = Pattern::new(vec![Tok::lit("v="), Tok::cap("v")]);
        let d = record_decl(vec![p.clone(), p]);
        assert!(rules_of(&check(&[d])).contains(&"decl-unreachable-rule"));
    }

    #[test]
    fn filter_shadowed_rule_unreachable() {
        let d = decl(ParserKind::Staged(ParserSpec {
            name: "t".into(),
            filters: vec![LineMatcher::Prefix("#".into())],
            context: vec![],
            records: vec![Pattern::new(vec![Tok::lit("# v="), Tok::cap("v")])],
            blocks: None,
        }));
        assert!(rules_of(&check(&[d])).contains(&"decl-unreachable-rule"));
    }

    #[test]
    fn empty_block_unreachable() {
        let d = decl(ParserKind::Staged(ParserSpec {
            name: "t".into(),
            filters: vec![],
            context: vec![],
            records: vec![],
            blocks: Some(BlockSpec {
                marker: Pattern::new(vec![Tok::lit("M")]),
                lines: vec![],
            }),
        }));
        assert!(rules_of(&check(&[d])).contains(&"decl-unreachable-rule"));
    }

    #[test]
    fn block_capturing_field_twice_denied() {
        let d = decl(ParserKind::Staged(ParserSpec {
            name: "t".into(),
            filters: vec![],
            context: vec![],
            records: vec![],
            blocks: Some(BlockSpec {
                marker: Pattern::new(vec![Tok::lit("M "), Tok::cap("x")]),
                lines: vec![Some(Pattern::new(vec![Tok::lit("x="), Tok::cap("x")]))],
            }),
        }));
        assert!(rules_of(&check(&[d])).contains(&"decl-duplicate-field"));
    }

    #[test]
    fn event_table_without_request_id_denied() {
        let mut d = record_decl(vec![Pattern::new(vec![Tok::lit("v="), Tok::cap("v")])]);
        d.table = "event_apache".into();
        assert_eq!(
            rules_of(&check(&[d.clone()])),
            vec!["decl-missing-request-id"]
        );
        d.parser = ParserKind::Staged(ParserSpec {
            name: "t".into(),
            filters: vec![],
            context: vec![],
            records: vec![Pattern::new(vec![Tok::lit("id="), Tok::cap("request_id")])],
            blocks: None,
        });
        assert!(
            check(&[d]).is_empty(),
            "request_id capture satisfies the rule"
        );
    }

    #[test]
    fn xml_mapping_duplicate_and_empty_fields_denied() {
        let d = decl(ParserKind::XmlDirect(XmlMapping {
            entry_element: "ts".into(),
            entry_attrs: vec![("time".into(), "t".into()), ("t2".into(), "t".into())],
            leaf_attrs: vec![("cpu".into(), "".into(), "u".into())],
        }));
        let rules = rules_of(&check(&[d]));
        assert!(rules.contains(&"decl-duplicate-field"));
        assert!(rules.contains(&"decl-empty-field"));
    }

    #[test]
    fn cross_declaration_type_conflict_flagged() {
        // Same table, same field name: one declaration captures it as a
        // wall-clock timestamp, the other injects an integer constant.
        let a = record_decl(vec![Pattern::new(vec![Tok::wall("when")])]);
        let mut b = record_decl(vec![Pattern::new(vec![Tok::lit("v="), Tok::cap("v")])]);
        b.path = "other.log".into();
        b.constants = vec![("when".into(), "7".into())];
        let issues = check(&[a, b]);
        assert_eq!(rules_of(&issues), vec!["schema-conflict"]);
        assert!(issues[0].message.contains("degenerates to text"));
    }

    #[test]
    fn declared_columns_types() {
        let mut d = decl(ParserKind::Staged(ParserSpec {
            name: "t".into(),
            filters: vec![],
            context: vec![],
            records: vec![Pattern::new(vec![
                Tok::wall("time"),
                Tok::Ws,
                Tok::cap("val"),
            ])],
            blocks: None,
        }));
        d.constants = vec![("tier".into(), "2".into()), ("node".into(), "a0".into())];
        let cols = declared_columns(&d);
        assert_eq!(
            cols,
            vec![
                ("tier".to_string(), ColumnType::Int),
                ("node".to_string(), ColumnType::Text),
                ("time".to_string(), ColumnType::Timestamp),
                ("val".to_string(), ColumnType::Null),
            ]
        );
    }
}
