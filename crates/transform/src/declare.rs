//! Parsing declarations and their execution engine.
//!
//! The paper separates *what to parse* from *how to ingest it* (§III-B1):
//! mScopeDataTransformer "maintains a mapping between input log files and
//! their specific mScopeParser [… and] instructions for how the specified
//! mScopeParser should inject semantics into its input logs", supporting
//! both line-sequence instructions and string-token instructions.
//!
//! A [`ParsingDeclaration`] is that mapping entry: a file, a parser
//! ([`ParserKind`]), a destination table, and constant fields to inject
//! (node name, tier, …). Executing a declaration yields the annotated XML
//! of §III-B2 — every log line wrapped in an `<entry>` with semantic child
//! tags.

use crate::error::TransformError;
use crate::pattern::Pattern;
use crate::xml::{self, XmlNode};

/// Cheap line classifiers used by filter stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineMatcher {
    /// Matches empty / whitespace-only lines.
    Blank,
    /// Matches lines starting with the prefix.
    Prefix(String),
    /// Matches lines containing the substring.
    Contains(String),
}
mscope_serdes::json_enum!(LineMatcher { Blank, Prefix(a), Contains(a) });

impl LineMatcher {
    /// Tests a line.
    pub fn matches(&self, line: &str) -> bool {
        match self {
            LineMatcher::Blank => line.trim().is_empty(),
            LineMatcher::Prefix(p) => line.starts_with(p.as_str()),
            LineMatcher::Contains(c) => line.contains(c.as_str()),
        }
    }
}

/// A staged, instruction-driven text parser.
#[derive(Debug, Clone, PartialEq)]
pub struct ParserSpec {
    /// Human-readable parser name (e.g. `"SAR mScopeParser"`).
    pub name: String,
    /// Lines matching any of these are dropped before parsing (banners,
    /// repeated headers, blanks).
    pub filters: Vec<LineMatcher>,
    /// Patterns whose captures become sticky context merged into subsequent
    /// records (e.g. IOstat's standalone timestamp lines).
    pub context: Vec<Pattern>,
    /// Patterns that each produce one record per matching line.
    pub records: Vec<Pattern>,
    /// Line-sequence mode: blocks introduced by a marker line, with
    /// positional per-line patterns (`None` = skip that line).
    pub blocks: Option<BlockSpec>,
}
mscope_serdes::json_struct!(ParserSpec {
    name,
    filters,
    context,
    records,
    blocks
});

/// Line-sequence instructions: a marker pattern starts a block; the next
/// `lines.len()` lines are interpreted positionally.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Pattern recognizing (and capturing from) the block-start line.
    pub marker: Pattern,
    /// Positional patterns for the lines following the marker.
    pub lines: Vec<Option<Pattern>>,
}
mscope_serdes::json_struct!(BlockSpec { marker, lines });

/// Declarative mapping of an XML input to entries (the "direct XML" path a
/// modern SAR enables — paper §III-B2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlMapping {
    /// Element name that delimits one entry (e.g. `"timestamp"`).
    pub entry_element: String,
    /// `(attribute, field)` pairs read off the entry element itself.
    pub entry_attrs: Vec<(String, String)>,
    /// `(descendant element, attribute, field)` pairs read from within the
    /// entry.
    pub leaf_attrs: Vec<(String, String, String)>,
}
mscope_serdes::json_struct!(XmlMapping {
    entry_element,
    entry_attrs,
    leaf_attrs
});

/// How a file is parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum ParserKind {
    /// Multi-stage text parsing.
    Staged(ParserSpec),
    /// Direct XML mapping.
    XmlDirect(XmlMapping),
}
mscope_serdes::json_enum!(ParserKind { Staged(a), XmlDirect(a) });

/// One entry of the file → parser mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsingDeclaration {
    /// Path of the log file in the [`LogStore`](mscope_monitors::LogStore).
    pub path: String,
    /// Monitor that produced the file.
    pub monitor_id: String,
    /// Parser to apply.
    pub parser: ParserKind,
    /// Destination mScopeDB table.
    pub table: String,
    /// Constant `(field, value)` pairs injected into every entry (node
    /// name, tier index, …) — semantics the log itself does not carry.
    pub constants: Vec<(String, String)>,
}
mscope_serdes::json_struct!(ParsingDeclaration {
    path,
    monitor_id,
    parser,
    table,
    constants
});

impl ParsingDeclaration {
    /// Executes the declaration over file contents, producing the annotated
    /// `<log>` document.
    ///
    /// # Errors
    ///
    /// [`TransformError::UnparsedLine`] when a surviving line matches no
    /// instruction (format drift is an error, not silence); XML errors for
    /// the direct path.
    pub fn execute(&self, content: &str) -> Result<XmlNode, TransformError> {
        let entries = match &self.parser {
            ParserKind::Staged(spec) => self.run_staged(spec, content)?,
            ParserKind::XmlDirect(map) => self.run_xml(map, content)?,
        };
        let mut root = XmlNode::new("log")
            .attr("source", &self.path)
            .attr("monitor", &self.monitor_id)
            .attr("table", &self.table);
        root.children = entries;
        Ok(root)
    }

    fn make_entry(&self, fields: &[(String, String)]) -> XmlNode {
        let mut entry = XmlNode::new("entry");
        for (k, v) in &self.constants {
            entry
                .children
                .push(XmlNode::new(k.clone()).with_text(v.clone()));
        }
        for (k, v) in fields {
            entry
                .children
                .push(XmlNode::new(k.clone()).with_text(v.clone()));
        }
        entry
    }

    fn run_staged(&self, spec: &ParserSpec, content: &str) -> Result<Vec<XmlNode>, TransformError> {
        let mut entries = Vec::new();
        let mut ctx: Vec<(String, String)> = Vec::new();
        // Block mode state: Some((captures, next line index)) while inside.
        let mut block: Option<(Vec<(String, String)>, usize)> = None;

        'lines: for (ln, line) in content.lines().enumerate() {
            if spec.filters.iter().any(|f| f.matches(line)) {
                continue;
            }
            if let Some(bs) = &spec.blocks {
                if let Some(caps) = bs.marker.match_line(line) {
                    // New block begins (flushing any incomplete previous one
                    // would hide truncation; incomplete blocks are dropped
                    // only at EOF, mirroring a tool killed mid-record).
                    block = Some((caps, 0));
                    continue;
                }
                if let Some((fields, idx)) = &mut block {
                    let Some(slot) = bs.lines.get(*idx) else {
                        return Err(TransformError::UnparsedLine {
                            file: self.path.clone(),
                            line_no: ln + 1,
                            line: line.to_string(),
                        });
                    };
                    if let Some(pat) = slot {
                        let caps =
                            pat.match_line(line)
                                .ok_or_else(|| TransformError::UnparsedLine {
                                    file: self.path.clone(),
                                    line_no: ln + 1,
                                    line: line.to_string(),
                                })?;
                        fields.extend(caps);
                    }
                    *idx += 1;
                    if *idx == bs.lines.len() {
                        let (fields, _) = block.take().expect("inside block");
                        entries.push(self.make_entry(&fields));
                    }
                    continue;
                }
            }
            for pat in &spec.context {
                if let Some(caps) = pat.match_line(line) {
                    for (k, v) in caps {
                        ctx.retain(|(ck, _)| *ck != k);
                        ctx.push((k, v));
                    }
                    continue 'lines;
                }
            }
            for pat in &spec.records {
                if let Some(caps) = pat.match_line(line) {
                    let mut fields = ctx.clone();
                    fields.extend(caps);
                    entries.push(self.make_entry(&fields));
                    continue 'lines;
                }
            }
            return Err(TransformError::UnparsedLine {
                file: self.path.clone(),
                line_no: ln + 1,
                line: line.to_string(),
            });
        }
        Ok(entries)
    }

    fn run_xml(&self, map: &XmlMapping, content: &str) -> Result<Vec<XmlNode>, TransformError> {
        let doc = xml::parse(content).map_err(TransformError::Xml)?;
        let mut entries = Vec::new();
        for el in doc.find_all(&map.entry_element) {
            let mut fields: Vec<(String, String)> = Vec::new();
            for (attr, field) in &map.entry_attrs {
                if let Some(v) = el.get_attr(attr) {
                    fields.push((field.clone(), v.to_string()));
                }
            }
            for (elem, attr, field) in &map.leaf_attrs {
                if let Some(leaf) = el.find_all(elem).first() {
                    if let Some(v) = leaf.get_attr(attr) {
                        fields.push((field.clone(), v.to_string()));
                    }
                }
            }
            entries.push(self.make_entry(&fields));
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Tok;

    fn decl(parser: ParserKind) -> ParsingDeclaration {
        ParsingDeclaration {
            path: "test.log".into(),
            monitor_id: "m1".into(),
            parser,
            table: "t".into(),
            constants: vec![("node".into(), "apache0".into())],
        }
    }

    #[test]
    fn records_mode_with_filters() {
        let spec = ParserSpec {
            name: "test".into(),
            filters: vec![LineMatcher::Prefix("#".into()), LineMatcher::Blank],
            context: vec![],
            records: vec![Pattern::new(vec![
                Tok::cap("key"),
                Tok::lit("="),
                Tok::cap("val"),
            ])],
            blocks: None,
        };
        let doc = decl(ParserKind::Staged(spec))
            .execute("# header\n\na=1\nb=2\n")
            .unwrap();
        assert_eq!(doc.children.len(), 2);
        let e = &doc.children[0];
        assert_eq!(e.find("node").unwrap().text, "apache0", "constant injected");
        assert_eq!(e.find("key").unwrap().text, "a");
        assert_eq!(e.find("val").unwrap().text, "1");
        assert_eq!(doc.get_attr("table"), Some("t"));
    }

    #[test]
    fn unparsed_line_is_an_error() {
        let spec = ParserSpec {
            name: "strict".into(),
            filters: vec![],
            context: vec![],
            records: vec![Pattern::new(vec![Tok::lit("ok")])],
            blocks: None,
        };
        let err = decl(ParserKind::Staged(spec))
            .execute("ok\nBAD LINE\n")
            .unwrap_err();
        match err {
            TransformError::UnparsedLine { line_no, line, .. } => {
                assert_eq!(line_no, 2);
                assert_eq!(line, "BAD LINE");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn context_sticks_until_replaced() {
        let spec = ParserSpec {
            name: "ctx".into(),
            filters: vec![],
            context: vec![Pattern::new(vec![Tok::wall("time")])],
            records: vec![Pattern::new(vec![Tok::lit("v="), Tok::cap("v")])],
            blocks: None,
        };
        let doc = decl(ParserKind::Staged(spec))
            .execute("00:00:01.000000\nv=1\nv=2\n00:00:02.000000\nv=3\n")
            .unwrap();
        assert_eq!(doc.children.len(), 3);
        assert_eq!(
            doc.children[1].find("time").unwrap().text,
            "00:00:01.000000"
        );
        assert_eq!(
            doc.children[2].find("time").unwrap().text,
            "00:00:02.000000"
        );
    }

    #[test]
    fn block_mode_positional_lines() {
        let spec = ParserSpec {
            name: "blocks".into(),
            filters: vec![],
            context: vec![],
            records: vec![],
            blocks: Some(BlockSpec {
                marker: Pattern::new(vec![Tok::lit("=== "), Tok::cap("rec"), Tok::lit(" ===")]),
                lines: vec![
                    None,
                    Some(Pattern::new(vec![Tok::cap("a"), Tok::Ws, Tok::cap("b")])),
                ],
            }),
        };
        let doc = decl(ParserKind::Staged(spec))
            .execute("=== 1 ===\nheader junk\n10 20\n=== 2 ===\nheader junk\n30 40\n")
            .unwrap();
        assert_eq!(doc.children.len(), 2);
        assert_eq!(doc.children[0].find("a").unwrap().text, "10");
        assert_eq!(doc.children[1].find("b").unwrap().text, "40");
        assert_eq!(doc.children[0].find("rec").unwrap().text, "1");
    }

    #[test]
    fn incomplete_trailing_block_dropped() {
        let spec = ParserSpec {
            name: "blocks".into(),
            filters: vec![],
            context: vec![],
            records: vec![],
            blocks: Some(BlockSpec {
                marker: Pattern::new(vec![Tok::lit("M")]),
                lines: vec![Some(Pattern::new(vec![Tok::cap("x")]))],
            }),
        };
        let doc = decl(ParserKind::Staged(spec)).execute("M\n1\nM\n").unwrap();
        assert_eq!(doc.children.len(), 1, "truncated final block is dropped");
    }

    #[test]
    fn xml_direct_mapping() {
        let map = XmlMapping {
            entry_element: "timestamp".into(),
            entry_attrs: vec![("time".into(), "time".into())],
            leaf_attrs: vec![("cpu".into(), "user".into(), "cpu_user".into())],
        };
        let xml_in = "<sysstat><host><statistics>\
            <timestamp time=\"00:00:01.000000\"><cpu-load><cpu number=\"all\" user=\"12.5\"/></cpu-load></timestamp>\
            <timestamp time=\"00:00:02.000000\"><cpu-load><cpu number=\"all\" user=\"14.0\"/></cpu-load></timestamp>\
            </statistics></host></sysstat>";
        let doc = decl(ParserKind::XmlDirect(map)).execute(xml_in).unwrap();
        assert_eq!(doc.children.len(), 2);
        assert_eq!(
            doc.children[0].find("time").unwrap().text,
            "00:00:01.000000"
        );
        assert_eq!(doc.children[1].find("cpu_user").unwrap().text, "14.0");
    }

    #[test]
    fn xml_direct_rejects_bad_xml() {
        let map = XmlMapping {
            entry_element: "t".into(),
            entry_attrs: vec![],
            leaf_attrs: vec![],
        };
        assert!(matches!(
            decl(ParserKind::XmlDirect(map)).execute("<broken"),
            Err(TransformError::Xml(_))
        ));
    }
}
