//! The end-to-end mScopeDataTransformer pipeline (paper Fig. 3):
//! parsing declarations → mScopeParsers → annotated XML → XMLtoCSV
//! converter (schema inference) → Data Importer → mScopeDB.

use crate::convert::xml_to_csv;
use crate::declare::{self, ParsingDeclaration};
use crate::error::TransformError;
use crate::import::import_csv;
use crate::parsers::declaration_for;
use mscope_db::Database;
use mscope_monitors::{LogFileMeta, LogStore, MonitorKind};
use std::collections::BTreeMap;

/// What one pipeline run produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransformReport {
    /// Files parsed.
    pub files: usize,
    /// Entries extracted across all files.
    pub entries: usize,
    /// `(table, rows-loaded)` per destination table.
    pub tables: Vec<(String, usize)>,
}
mscope_serdes::json_struct!(TransformReport {
    files,
    entries,
    tables
});

/// The transformer: a set of parsing declarations derived from the monitor
/// manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct DataTransformer {
    declarations: Vec<ParsingDeclaration>,
    manifest: Vec<LogFileMeta>,
}

impl DataTransformer {
    /// Builds declarations for every file in a monitor manifest — the
    /// "parsing declaration" stage.
    pub fn from_manifest(manifest: &[LogFileMeta]) -> DataTransformer {
        DataTransformer {
            declarations: manifest.iter().map(declaration_for).collect(),
            manifest: manifest.to_vec(),
        }
    }

    /// The declarations (file → parser mapping), for inspection.
    pub fn declarations(&self) -> &[ParsingDeclaration] {
        &self.declarations
    }

    /// Statically validates the declaration set without running anything —
    /// the check [`run`](DataTransformer::run) applies before touching the
    /// log store.
    ///
    /// # Errors
    ///
    /// [`TransformError::BadDeclaration`] for the first deny-level issue
    /// found by [`declare::check`].
    pub fn validate(&self) -> Result<(), TransformError> {
        declare::validate(&self.declarations)
    }

    /// Runs the full pipeline: every declared file is parsed to annotated
    /// XML; documents destined for the same table are converted together
    /// (so schema inference unions across replicas); CSV is loaded into the
    /// warehouse; and the static metadata tables (`monitors`, `log_files`)
    /// are populated.
    ///
    /// # Errors
    ///
    /// The first error from any stage; nothing is half-loaded on error for
    /// the failing table, but previously completed tables remain.
    pub fn run(
        &self,
        store: &LogStore,
        db: &mut Database,
    ) -> Result<TransformReport, TransformError> {
        // Pre-validate: a malformed declaration fails here, with a rule ID
        // and reason, instead of deep inside a parse or import stage.
        self.validate()?;
        // Group declarations by destination table, preserving order.
        let mut groups: BTreeMap<&str, Vec<&ParsingDeclaration>> = BTreeMap::new();
        for d in &self.declarations {
            groups.entry(&d.table).or_default().push(d);
        }
        let mut report = TransformReport::default();
        for (table, decls) in groups {
            let mut docs = Vec::with_capacity(decls.len());
            for d in decls {
                let content = store
                    .read(&d.path)
                    .ok_or_else(|| TransformError::MissingFile(d.path.clone()))?;
                docs.push(d.execute(content)?);
                report.files += 1;
            }
            let converted = xml_to_csv(&docs)?;
            report.entries += converted.rows;
            let loaded = import_csv(db, table, &converted.schema, &converted.csv)?;
            report.tables.push((table.to_string(), loaded));
        }
        // Metadata registration.
        for m in &self.manifest {
            let kind = match m.kind {
                MonitorKind::Event => "event",
                MonitorKind::Resource => "resource",
            };
            db.register_monitor(
                &m.monitor_id,
                &m.node.to_string(),
                &m.tool,
                kind,
                m.period_ms as i64,
            )
            .map_err(TransformError::Db)?;
            let bytes = store.size(&m.path).unwrap_or(0) as i64;
            db.register_log_file(
                &m.path,
                &m.node.to_string(),
                &m.monitor_id,
                &m.format,
                bytes,
            )
            .map_err(TransformError::Db)?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscope_monitors::MonitorSuite;
    use mscope_ntier::{Simulator, SystemConfig};
    use mscope_sim::SimDuration;

    fn artifacts() -> (
        mscope_ntier::RunOutput,
        mscope_monitors::MonitoringArtifacts,
    ) {
        let mut cfg = SystemConfig::rubbos_baseline(60);
        cfg.duration = SimDuration::from_secs(6);
        cfg.warmup = SimDuration::from_secs(2);
        cfg.workload.ramp_up = SimDuration::from_secs(1);
        let out = Simulator::new(cfg).unwrap().run();
        let art = MonitorSuite::standard(&out.config).render(&out);
        (out, art)
    }

    #[test]
    fn full_pipeline_loads_all_tables() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        let report = tr.run(&art.store, &mut db).unwrap();
        assert_eq!(report.files, art.manifest.len());
        assert!(report.entries > 100, "entries {}", report.entries);
        // Expected dynamic tables.
        let names = db.dynamic_table_names();
        for expect in [
            "collectl",
            "sar",
            "sar_xml",
            "iostat",
            "event_apache",
            "event_tomcat",
            "event_cjdbc",
            "event_mysql",
        ] {
            assert!(names.contains(&expect), "missing table {expect}: {names:?}");
        }
        // Metadata registered.
        assert_eq!(
            db.table("monitors").unwrap().row_count(),
            art.manifest.len()
        );
        assert_eq!(
            db.table("log_files").unwrap().row_count(),
            art.manifest.len()
        );
    }

    #[test]
    fn event_table_contents_match_run() {
        let (out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        let apache = db.require("event_apache").unwrap();
        // One row per line in the Apache access log.
        let lines = art
            .store
            .read("logs/tier0-0/access_log")
            .unwrap()
            .lines()
            .count();
        assert_eq!(apache.row_count(), lines);
        // Request IDs are 12-hex fixed width text.
        let ids = apache.column("request_id").unwrap();
        assert!(ids
            .iter()
            .all(|v| v.as_str().is_some_and(|s| s.len() == 12)));
        // ua column is timestamps (µs) and all within the run.
        let ua = apache.numeric_column("ua");
        assert_eq!(ua.len(), lines);
        assert!(ua
            .iter()
            .all(|&t| t >= 0.0 && t <= out.end_time.as_micros() as f64));
    }

    #[test]
    fn collectl_table_has_node_constant_per_tier() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        let collectl = db.require("collectl").unwrap();
        let nodes: std::collections::BTreeSet<String> = collectl
            .column("node")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_str().map(String::from))
            .collect();
        assert_eq!(nodes.len(), 4, "all four nodes present: {nodes:?}");
        // Disk util numeric and bounded.
        let util = collectl.numeric_column("disk_util");
        assert!(util.iter().all(|&u| (0.0..=100.0).contains(&u)));
    }

    #[test]
    fn sar_text_and_xml_agree() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        let text = db.require("sar").unwrap();
        let xml = db.require("sar_xml").unwrap();
        assert_eq!(text.row_count(), xml.row_count());
        // Same cpu_user series modulo float formatting.
        let a = text.numeric_column("cpu_user");
        let b = xml.numeric_column("cpu_user");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.01, "{x} vs {y}");
        }
    }

    #[test]
    fn missing_file_is_an_error() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        let empty = LogStore::new();
        assert!(matches!(
            tr.run(&empty, &mut db),
            Err(TransformError::MissingFile(_))
        ));
    }

    #[test]
    fn corrupted_log_line_is_an_error() {
        let (_out, mut art) = artifacts();
        art.store
            .append_line("logs/tier0-0/access_log", "THIS IS NOT AN ACCESS LOG LINE");
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        assert!(matches!(
            tr.run(&art.store, &mut db),
            Err(TransformError::UnparsedLine { .. })
        ));
    }

    #[test]
    fn disabled_event_monitors_yield_resource_tables_only() {
        let mut cfg = SystemConfig::rubbos_baseline(40);
        cfg.duration = SimDuration::from_secs(4);
        cfg.warmup = SimDuration::from_secs(1);
        cfg.monitoring.event_monitors = false;
        let out = Simulator::new(cfg).unwrap().run();
        let art = MonitorSuite::standard(&out.config).render(&out);
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        assert!(db
            .dynamic_table_names()
            .iter()
            .all(|n| !n.starts_with("event_")));
    }

    #[test]
    fn event_mysql_ids_join_with_event_apache() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        let apache = db.require("event_apache").unwrap();
        let mysql = db.require("event_mysql").unwrap();
        let joined = apache
            .inner_join(mysql, "request_id", "request_id")
            .unwrap();
        // Every MySQL-visiting request also went through Apache.
        assert_eq!(joined.row_count(), mysql.row_count());
        assert!(joined.row_count() > 10);
    }
}

#[cfg(test)]
mod sar_subsystem_tests {
    use super::*;
    use mscope_monitors::MonitorSuite;
    use mscope_ntier::{Simulator, SystemConfig};
    use mscope_sim::SimDuration;

    #[test]
    fn sar_mem_and_net_tables_load() {
        let mut cfg = SystemConfig::rubbos_baseline(60);
        cfg.duration = SimDuration::from_secs(6);
        cfg.warmup = SimDuration::from_secs(2);
        cfg.workload.ramp_up = SimDuration::from_secs(1);
        let out = Simulator::new(cfg).unwrap().run();
        let art = MonitorSuite::standard(&out.config).render(&out);
        let mut db = Database::new();
        DataTransformer::from_manifest(&art.manifest)
            .run(&art.store, &mut db)
            .unwrap();
        let mem = db.require("sar_mem").unwrap();
        assert!(mem.row_count() > 10);
        // Dirty kB is 4x the page count in the collectl table at the same
        // node & time (sar-mem reports kbdirty, collectl reports pages).
        let dirty_kb = mem.numeric_column("mem_dirty_kb");
        assert!(dirty_kb.iter().all(|&v| v >= 0.0));
        let net = db.require("sar_net").unwrap();
        assert_eq!(net.row_count(), mem.row_count());
        let rx = net.numeric_column("net_rx_kb");
        assert!(rx.iter().any(|&v| v > 0.0), "traffic flowed");
    }
}
