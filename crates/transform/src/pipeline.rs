//! The end-to-end mScopeDataTransformer pipeline (paper Fig. 3):
//! parsing declarations → mScopeParsers → annotated XML → XMLtoCSV
//! converter (schema inference) → Data Importer → mScopeDB.
//!
//! The CPU-heavy front of the pipeline — log read → parse → XML → typed
//! rows — is embarrassingly parallel across destination tables, so
//! [`DataTransformer::run`] fans the table groups out over scoped worker
//! threads fed by a small in-tree work queue, then loads the converted
//! groups into the warehouse serially in deterministic table order. The
//! report and the warehouse contents are byte-identical whether the run
//! used one worker or many.

use crate::convert::{convert_xml, ConvertedTable};
use crate::declare::{self, ParsingDeclaration};
use crate::error::TransformError;
use crate::import::{import_csv, import_rows};
use crate::parsers::declaration_for;
use mscope_db::Database;
use mscope_monitors::{LogFileMeta, LogStore, MonitorKind};
use mscope_sim::WorkQueue;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// What one pipeline run produced.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransformReport {
    /// Files parsed.
    pub files: usize,
    /// Entries extracted across all files.
    pub entries: usize,
    /// `(table, rows-loaded)` per destination table.
    pub tables: Vec<(String, usize)>,
}
mscope_serdes::json_struct!(TransformReport {
    files,
    entries,
    tables
});

/// Below this much declared log input, `workers: 0` (auto) runs the
/// convert stage serially: thread spawn and lock traffic cost more than
/// they save on small runs (the bench history shows parallel at ~1 MiB
/// *slower* than serial; the crossover is comfortably above that).
const AUTO_PARALLEL_MIN_BYTES: u64 = 4 << 20;

/// How a pipeline run executes: worker fan-out and load path. The default
/// (`workers: 0`, direct load) sizes the fan-out to the work: the
/// machine's parallelism for large runs, serial below
/// [`AUTO_PARALLEL_MIN_BYTES`] of declared input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunOptions {
    /// Worker threads for the convert stage; `0` picks automatically —
    /// the machine's available parallelism (capped at the number of table
    /// groups), falling back to serial when the declared input is too
    /// small for the fan-out to pay for itself.
    pub workers: usize,
    /// Load through a CSV serialize→reparse round-trip instead of the
    /// direct typed-row path. The results are identical; this exists for
    /// benchmarking the historical interchange format and validating the
    /// CSV export.
    pub csv_round_trip: bool,
}

impl RunOptions {
    /// One worker, direct typed-row load.
    pub fn serial() -> RunOptions {
        RunOptions {
            workers: 1,
            csv_round_trip: false,
        }
    }

    /// One worker, CSV round-trip load — the historical pipeline shape,
    /// kept as the benchmark baseline.
    pub fn serial_csv() -> RunOptions {
        RunOptions {
            workers: 1,
            csv_round_trip: true,
        }
    }
}

/// One table group's converted output, waiting to be loaded.
struct GroupOutput {
    files: usize,
    converted: ConvertedTable,
}

/// Runs the parse→convert front for one table group.
fn convert_group(
    decls: &[&ParsingDeclaration],
    store: &LogStore,
) -> Result<GroupOutput, TransformError> {
    let mut docs = Vec::with_capacity(decls.len());
    for d in decls {
        let content = store
            .read(&d.path)
            .ok_or_else(|| TransformError::MissingFile(d.path.clone()))?;
        docs.push(d.execute(content)?);
    }
    let converted = convert_xml(&docs)?;
    Ok(GroupOutput {
        files: decls.len(),
        converted,
    })
}

/// Locks a mutex, ignoring poisoning — a worker panic already propagates
/// through the thread scope, so a poisoned guard's data is never observed.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The transformer: a set of parsing declarations derived from the monitor
/// manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct DataTransformer {
    declarations: Vec<ParsingDeclaration>,
    manifest: Vec<LogFileMeta>,
}

impl DataTransformer {
    /// Builds declarations for every file in a monitor manifest — the
    /// "parsing declaration" stage.
    pub fn from_manifest(manifest: &[LogFileMeta]) -> DataTransformer {
        DataTransformer {
            declarations: manifest.iter().map(declaration_for).collect(),
            manifest: manifest.to_vec(),
        }
    }

    /// The declarations (file → parser mapping), for inspection.
    pub fn declarations(&self) -> &[ParsingDeclaration] {
        &self.declarations
    }

    /// The manifest this transformer was seeded from (drives the metadata
    /// tables at the end of a run, batch or streaming).
    pub fn manifest_entries(&self) -> &[LogFileMeta] {
        &self.manifest
    }

    /// Statically validates the declaration set without running anything —
    /// the check [`run`](DataTransformer::run) applies before touching the
    /// log store.
    ///
    /// # Errors
    ///
    /// [`TransformError::BadDeclaration`] for the first deny-level issue
    /// found by [`declare::check`].
    pub fn validate(&self) -> Result<(), TransformError> {
        declare::validate(&self.declarations)
    }

    /// Runs the full pipeline with default options: parallel convert
    /// stage, direct typed-row load. See [`DataTransformer::run_with`].
    ///
    /// # Errors
    ///
    /// The first error from any stage, in deterministic table order;
    /// nothing is half-loaded on error for the failing table, but
    /// previously completed tables remain.
    pub fn run(
        &self,
        store: &LogStore,
        db: &mut Database,
    ) -> Result<TransformReport, TransformError> {
        self.run_with(store, db, RunOptions::default())
    }

    /// Runs the full pipeline: every declared file is parsed to annotated
    /// XML; documents destined for the same table are converted together
    /// (so schema inference unions across replicas) into typed rows; rows
    /// are batch-loaded into the warehouse; and the static metadata tables
    /// (`monitors`, `log_files`) are populated.
    ///
    /// The convert stage fans out across `opts.workers` scoped threads
    /// (one table group per job); the load stage is serial and iterates
    /// groups in table order, so the warehouse contents and the report are
    /// identical for any worker count.
    ///
    /// # Errors
    ///
    /// The first error from any stage, in deterministic table order;
    /// nothing is half-loaded on error for the failing table, but
    /// previously completed tables remain.
    pub fn run_with(
        &self,
        store: &LogStore,
        db: &mut Database,
        opts: RunOptions,
    ) -> Result<TransformReport, TransformError> {
        // Pre-validate: a malformed declaration fails here, with a rule ID
        // and reason, instead of deep inside a parse or import stage.
        self.validate()?;
        // Group declarations by destination table, in deterministic order.
        let mut by_table: BTreeMap<&str, Vec<&ParsingDeclaration>> = BTreeMap::new();
        for d in &self.declarations {
            by_table.entry(&d.table).or_default().push(d);
        }
        let groups: Vec<(&str, Vec<&ParsingDeclaration>)> = by_table.into_iter().collect();

        // Convert stage: fan the groups out, or run inline for one worker.
        let declared_bytes: u64 = self
            .declarations
            .iter()
            .filter_map(|d| store.size(&d.path))
            .map(|b| b as u64)
            .sum();
        let workers = self.worker_count(opts, groups.len(), declared_bytes);
        let mut results: Vec<Option<Result<GroupOutput, TransformError>>> =
            if workers <= 1 || groups.len() <= 1 {
                groups
                    .iter()
                    .map(|(_, decls)| Some(convert_group(decls, store)))
                    .collect()
            } else {
                let queue = WorkQueue::new(groups.len());
                let slots = Mutex::new((0..groups.len()).map(|_| None).collect::<Vec<_>>());
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        s.spawn(|| {
                            // A claimed job always runs to completion, so
                            // dispensed indices always yield a result and
                            // unconverted groups form a strict suffix
                            // behind the first error.
                            while let Some(i) = queue.take() {
                                let out = convert_group(&groups[i].1, store);
                                if out.is_err() {
                                    queue.poison();
                                }
                                lock(&slots)[i] = Some(out);
                            }
                        });
                    }
                });
                slots
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            };

        // Load stage: serial, in table order — this is what makes reports
        // and warehouse state deterministic despite the parallel front.
        let mut report = TransformReport::default();
        for (i, (table, _)) in groups.iter().enumerate() {
            let out = match results[i].take() {
                Some(Ok(out)) => out,
                Some(Err(e)) => return Err(e),
                // Only reachable behind an error at a smaller index, which
                // the arm above already returned.
                None => {
                    return Err(TransformError::SchemaInference(format!(
                        "internal: group `{table}` left unconverted"
                    )))
                }
            };
            report.files += out.files;
            report.entries += out.converted.row_count();
            let loaded = if opts.csv_round_trip {
                import_csv(db, table, &out.converted.schema, &out.converted.to_csv())?
            } else {
                let ConvertedTable { schema, rows } = out.converted;
                import_rows(db, table, &schema, rows)?
            };
            // perf: one owned table name per loaded table — bounded by the
            // manifest's table groups, never by row count.
            report.tables.push((table.to_string(), loaded));
        }

        // Metadata registration. A file that was declared but is absent
        // from the store is an error, not a healthy zero-byte log.
        for m in &self.manifest {
            let kind = match m.kind {
                MonitorKind::Event => "event",
                MonitorKind::Resource => "resource",
            };
            // perf: one rendered node name per manifest entry, shared by
            // both registrations below (this used to render it twice).
            let node = m.node.to_string();
            db.register_monitor(&m.monitor_id, &node, &m.tool, kind, m.period_ms as i64)
                .map_err(TransformError::Db)?;
            let bytes = store
                .size(&m.path)
                .ok_or_else(|| TransformError::MissingFile(m.path.clone()))?
                as i64;
            db.register_log_file(&m.path, &node, &m.monitor_id, &m.format, bytes)
                .map_err(TransformError::Db)?;
        }
        Ok(report)
    }

    /// Resolves the effective worker count: explicit, or — in auto mode —
    /// the machine's available parallelism for large inputs and serial
    /// below [`AUTO_PARALLEL_MIN_BYTES`], capped by the number of table
    /// groups either way.
    fn worker_count(&self, opts: RunOptions, groups: usize, declared_bytes: u64) -> usize {
        let requested = if opts.workers == 0 {
            if declared_bytes < AUTO_PARALLEL_MIN_BYTES {
                1
            } else {
                std::thread::available_parallelism()
                    .map(usize::from)
                    .unwrap_or(4)
            }
        } else {
            opts.workers
        };
        requested.min(groups).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscope_monitors::MonitorSuite;
    use mscope_ntier::{Simulator, SystemConfig};
    use mscope_sim::SimDuration;

    fn artifacts() -> (
        mscope_ntier::RunOutput,
        mscope_monitors::MonitoringArtifacts,
    ) {
        let mut cfg = SystemConfig::rubbos_baseline(60);
        cfg.duration = SimDuration::from_secs(6);
        cfg.warmup = SimDuration::from_secs(2);
        cfg.workload.ramp_up = SimDuration::from_secs(1);
        let out = Simulator::new(cfg).unwrap().run();
        let art = MonitorSuite::standard(&out.config).render(&out);
        (out, art)
    }

    #[test]
    fn full_pipeline_loads_all_tables() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        let report = tr.run(&art.store, &mut db).unwrap();
        assert_eq!(report.files, art.manifest.len());
        assert!(report.entries > 100, "entries {}", report.entries);
        // Expected dynamic tables.
        let names = db.dynamic_table_names();
        for expect in [
            "collectl",
            "sar",
            "sar_xml",
            "iostat",
            "event_apache",
            "event_tomcat",
            "event_cjdbc",
            "event_mysql",
        ] {
            assert!(names.contains(&expect), "missing table {expect}: {names:?}");
        }
        // Metadata registered.
        assert_eq!(
            db.table("monitors").unwrap().row_count(),
            art.manifest.len()
        );
        assert_eq!(
            db.table("log_files").unwrap().row_count(),
            art.manifest.len()
        );
    }

    #[test]
    fn parallel_serial_and_csv_paths_are_byte_identical() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let variants = [
            RunOptions::default(),
            RunOptions::serial(),
            RunOptions::serial_csv(),
            RunOptions {
                workers: 3,
                csv_round_trip: true,
            },
        ];
        let mut outputs = Vec::new();
        for opts in variants {
            let mut db = Database::new();
            let report = tr.run_with(&art.store, &mut db, opts).unwrap();
            outputs.push((report, db.to_json().unwrap()));
        }
        for (report, json) in &outputs[1..] {
            assert_eq!(report, &outputs[0].0, "report drift");
            assert_eq!(json, &outputs[0].1, "warehouse drift");
        }
    }

    #[test]
    fn event_table_contents_match_run() {
        let (out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        let apache = db.require("event_apache").unwrap();
        // One row per line in the Apache access log.
        let lines = art
            .store
            .read("logs/tier0-0/access_log")
            .unwrap()
            .lines()
            .count();
        assert_eq!(apache.row_count(), lines);
        // Request IDs are 12-hex fixed width text.
        let ids = apache.column("request_id").unwrap();
        assert!(ids
            .iter()
            .all(|v| v.as_str().is_some_and(|s| s.len() == 12)));
        // ua column is timestamps (µs) and all within the run.
        assert_eq!(apache.numeric_values("ua").count(), lines);
        assert!(apache
            .numeric_values("ua")
            .all(|t| t >= 0.0 && t <= out.end_time.as_micros() as f64));
    }

    #[test]
    fn collectl_table_has_node_constant_per_tier() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        let collectl = db.require("collectl").unwrap();
        let nodes: std::collections::BTreeSet<String> = collectl
            .column("node")
            .unwrap()
            .iter()
            .filter_map(|v| v.as_str().map(String::from))
            .collect();
        assert_eq!(nodes.len(), 4, "all four nodes present: {nodes:?}");
        // Disk util numeric and bounded.
        assert!(collectl
            .numeric_values("disk_util")
            .all(|u| (0.0..=100.0).contains(&u)));
    }

    #[test]
    fn sar_text_and_xml_agree() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        let text = db.require("sar").unwrap();
        let xml = db.require("sar_xml").unwrap();
        assert_eq!(text.row_count(), xml.row_count());
        // Same cpu_user series modulo float formatting.
        let a = text.numeric_values("cpu_user");
        let b: Vec<f64> = xml.numeric_values("cpu_user").collect();
        assert_eq!(text.numeric_values("cpu_user").count(), b.len());
        for (x, y) in a.zip(&b) {
            assert!((x - y).abs() < 0.01, "{x} vs {y}");
        }
    }

    #[test]
    fn missing_file_is_an_error() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        let empty = LogStore::new();
        assert!(matches!(
            tr.run(&empty, &mut db),
            Err(TransformError::MissingFile(_))
        ));
    }

    #[test]
    fn missing_file_is_an_error_in_parallel_mode_too() {
        let (_out, mut art) = artifacts();
        // Remove one file: the parse stage of its group must fail, and the
        // parallel run must surface that error, not a half-report.
        art.store.remove("logs/tier3-0/iostat.log");
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        let err = tr
            .run_with(&art.store, &mut db, RunOptions::default())
            .unwrap_err();
        assert!(
            matches!(err, TransformError::MissingFile(ref p) if p.contains("iostat")),
            "{err}"
        );
    }

    #[test]
    fn corrupted_log_line_is_an_error() {
        let (_out, mut art) = artifacts();
        art.store
            .append_line("logs/tier0-0/access_log", "THIS IS NOT AN ACCESS LOG LINE");
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        assert!(matches!(
            tr.run(&art.store, &mut db),
            Err(TransformError::UnparsedLine { .. })
        ));
    }

    #[test]
    fn disabled_event_monitors_yield_resource_tables_only() {
        let mut cfg = SystemConfig::rubbos_baseline(40);
        cfg.duration = SimDuration::from_secs(4);
        cfg.warmup = SimDuration::from_secs(1);
        cfg.monitoring.event_monitors = false;
        let out = Simulator::new(cfg).unwrap().run();
        let art = MonitorSuite::standard(&out.config).render(&out);
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        assert!(db
            .dynamic_table_names()
            .iter()
            .all(|n| !n.starts_with("event_")));
    }

    #[test]
    fn event_mysql_ids_join_with_event_apache() {
        let (_out, art) = artifacts();
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut db = Database::new();
        tr.run(&art.store, &mut db).unwrap();
        let apache = db.require("event_apache").unwrap();
        let mysql = db.require("event_mysql").unwrap();
        let joined = apache
            .inner_join(mysql, "request_id", "request_id")
            .unwrap();
        // Every MySQL-visiting request also went through Apache.
        assert_eq!(joined.row_count(), mysql.row_count());
        assert!(joined.row_count() > 10);
    }
}

#[cfg(test)]
mod sar_subsystem_tests {
    use super::*;
    use mscope_monitors::MonitorSuite;
    use mscope_ntier::{Simulator, SystemConfig};
    use mscope_sim::SimDuration;

    #[test]
    fn sar_mem_and_net_tables_load() {
        let mut cfg = SystemConfig::rubbos_baseline(60);
        cfg.duration = SimDuration::from_secs(6);
        cfg.warmup = SimDuration::from_secs(2);
        cfg.workload.ramp_up = SimDuration::from_secs(1);
        let out = Simulator::new(cfg).unwrap().run();
        let art = MonitorSuite::standard(&out.config).render(&out);
        let mut db = Database::new();
        DataTransformer::from_manifest(&art.manifest)
            .run(&art.store, &mut db)
            .unwrap();
        let mem = db.require("sar_mem").unwrap();
        assert!(mem.row_count() > 10);
        // Dirty kB is 4x the page count in the collectl table at the same
        // node & time (sar-mem reports kbdirty, collectl reports pages).
        assert!(mem.numeric_values("mem_dirty_kb").all(|v| v >= 0.0));
        let net = db.require("sar_net").unwrap();
        assert_eq!(net.row_count(), mem.row_count());
        assert!(
            net.numeric_values("net_rx_kb").any(|v| v > 0.0),
            "traffic flowed"
        );
    }
}
