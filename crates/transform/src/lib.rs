//! # mscope-transform — mScopeDataTransformer
//!
//! The multi-stage log transformation pipeline of the paper's §III-B and
//! Fig. 3, faithful stage for stage:
//!
//! 1. **Parsing declaration** ([`declaration_for`], [`ParsingDeclaration`])
//!    — maps every log file to its mScopeParser plus instructions: either
//!    *line-sequence* rules (block formats like Collectl's brief mode) or
//!    *string-token* patterns ([`Pattern`], the in-repo scanf-style engine).
//! 2. **Adding semantics** ([`ParsingDeclaration::execute`]) — parsers wrap
//!    each log line into `<entry>` elements with semantic field tags,
//!    producing annotated XML ([`XmlNode`]); the upgraded SAR's XML output
//!    takes the direct [`XmlMapping`] path instead.
//! 3. **XMLtoCSV conversion** ([`convert_xml`]) — bottom-up schema
//!    inference: column set = union of all tags, column type = narrowest
//!    lattice type admitting every value; produces typed rows directly
//!    ([`ConvertedTable`]), with CSV as an on-demand export
//!    ([`ConvertedTable::to_csv`]).
//! 4. **Data import** ([`import_rows`], [`import_csv`]) — creates mScopeDB
//!    tables on the fly and batch-loads the tuples, registering monitor /
//!    log-file metadata in the static tables.
//!
//! [`DataTransformer`] orchestrates all four stages over a monitor
//! manifest, fanning the CPU-bound parse/convert stages out across scoped
//! worker threads ([`RunOptions`]) while keeping warehouse loads serial and
//! deterministic.
//!
//! ## Example
//!
//! ```
//! use mscope_db::Database;
//! use mscope_monitors::MonitorSuite;
//! use mscope_ntier::{Simulator, SystemConfig};
//! use mscope_sim::SimDuration;
//! use mscope_transform::DataTransformer;
//!
//! let mut cfg = SystemConfig::rubbos_baseline(40);
//! cfg.duration = SimDuration::from_secs(3);
//! cfg.warmup = SimDuration::from_secs(1);
//! let out = Simulator::new(cfg).map_err(Box::<dyn std::error::Error>::from)?.run();
//! let art = MonitorSuite::standard(&out.config).render(&out);
//!
//! let mut db = Database::new();
//! let report = DataTransformer::from_manifest(&art.manifest).run(&art.store, &mut db)?;
//! assert!(report.entries > 0);
//! assert!(db.table("event_apache").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod csv;
pub mod declare;
mod error;
mod import;
mod parsers;
mod pattern;
mod pipeline;
mod stream;
mod xml;

pub use convert::{convert_xml, ConvertedTable};
pub use csv::{parse_csv, quote_field, write_csv, CsvError};
pub use declare::{BlockSpec, LineMatcher, ParserKind, ParserSpec, ParsingDeclaration, XmlMapping};
pub use error::TransformError;
pub use import::{import_csv, import_rows, normalize_cell, parse_cell};
pub use parsers::{
    apache_event_spec, cjdbc_event_spec, collectl_brief_spec, collectl_csv_spec, declaration_for,
    generic_kv_spec, iostat_spec, mysql_event_spec, sar_mem_spec, sar_net_spec, sar_text_spec,
    sar_xml_mapping, table_name, tomcat_event_spec,
};
pub use pattern::{looks_like_wallclock, timestamp_suffix_tokens, Pattern, Tok};
pub use pipeline::{DataTransformer, RunOptions, TransformReport};
pub use stream::StreamingTransformer;
pub use xml::{escape, parse as parse_xml, unescape, XmlError, XmlNode};
