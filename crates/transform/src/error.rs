//! Error type for the transformation pipeline.

use crate::csv::CsvError;
use crate::xml::XmlError;
use mscope_db::{ColumnType, DbError};
use std::error::Error;
use std::fmt;

/// Errors from any stage of mScopeDataTransformer.
#[derive(Debug)]
pub enum TransformError {
    /// A pattern is statically malformed (empty token, adjacent wildcards,
    /// duplicate capture, …) — found by [`Pattern::validate`](crate::Pattern::validate).
    BadPattern {
        /// Rendered pattern template.
        pattern: String,
        /// Which static rule it violates.
        rule: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A parsing declaration fails static validation
    /// ([`declare::validate`](crate::declare::validate)) — the pipeline
    /// refuses to run it rather than fail mid-load.
    BadDeclaration {
        /// Which static rule it violates.
        rule: &'static str,
        /// The declaration (or pattern within it) at fault.
        subject: String,
        /// Human-readable explanation.
        reason: String,
    },
    /// A log line survived the filters but matched no instruction.
    UnparsedLine {
        /// File being parsed.
        file: String,
        /// 1-based line number.
        line_no: usize,
        /// The offending line.
        line: String,
    },
    /// A file named in a declaration is missing from the log store.
    MissingFile(String),
    /// XML stage failure.
    Xml(XmlError),
    /// CSV stage failure.
    Csv(CsvError),
    /// Schema inference failure (ambiguous annotation).
    SchemaInference(String),
    /// CSV header does not match the inferred schema.
    HeaderMismatch {
        /// Destination table.
        table: String,
        /// Expected header.
        expected: String,
        /// Actual header.
        got: String,
    },
    /// A cell could not be read as its column's type.
    BadCell {
        /// Destination table.
        table: String,
        /// Column name.
        column: String,
        /// Raw text.
        value: String,
        /// Column type.
        expected: ColumnType,
    },
    /// Warehouse error.
    Db(DbError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::BadPattern {
                pattern,
                rule,
                reason,
            } => {
                write!(f, "invalid pattern `{pattern}` [{rule}]: {reason}")
            }
            TransformError::BadDeclaration {
                rule,
                subject,
                reason,
            } => {
                write!(f, "invalid declaration {subject} [{rule}]: {reason}")
            }
            TransformError::UnparsedLine {
                file,
                line_no,
                line,
            } => {
                write!(f, "unparsed line {line_no} of `{file}`: {line:?}")
            }
            TransformError::MissingFile(p) => write!(f, "declared log file `{p}` not found"),
            TransformError::Xml(e) => write!(f, "{e}"),
            TransformError::Csv(e) => write!(f, "{e}"),
            TransformError::SchemaInference(m) => write!(f, "schema inference failed: {m}"),
            TransformError::HeaderMismatch {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "csv header mismatch loading `{table}`: expected [{expected}], got [{got}]"
                )
            }
            TransformError::BadCell {
                table,
                column,
                value,
                expected,
            } => write!(
                f,
                "cell {value:?} of `{table}`.`{column}` is not a valid {expected}"
            ),
            TransformError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl Error for TransformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransformError::Xml(e) => Some(e),
            TransformError::Csv(e) => Some(e),
            TransformError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for TransformError {
    fn from(e: XmlError) -> Self {
        TransformError::Xml(e)
    }
}

impl From<CsvError> for TransformError {
    fn from(e: CsvError) -> Self {
        TransformError::Csv(e)
    }
}

impl From<DbError> for TransformError {
    fn from(e: DbError) -> Self {
        TransformError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TransformError::UnparsedLine {
            file: "a.log".into(),
            line_no: 7,
            line: "junk".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(TransformError::MissingFile("x".into())
            .to_string()
            .contains("x"));
        let e = TransformError::BadCell {
            table: "t".into(),
            column: "c".into(),
            value: "zz".into(),
            expected: ColumnType::Int,
        };
        assert!(e.to_string().contains("zz"));
    }

    #[test]
    fn error_trait_and_source() {
        fn is_err<E: Error + Send + Sync + 'static>(_: &E) {}
        let e = TransformError::Db(DbError::NoSuchTable("x".into()));
        is_err(&e);
        assert!(e.source().is_some());
        assert!(TransformError::MissingFile("p".into()).source().is_none());
    }
}
