//! mScope Data Importer (paper §III-B3, final stage): creates warehouse
//! tables from inferred schemas and loads the tuples.
//!
//! The primary path is **direct**: [`import_rows`] takes the typed rows
//! the converter produced and batch-loads them ([`Database::insert_batch`])
//! with no text round-trip. [`import_csv`] remains for loading exported CSV
//! artifacts and foreign CSV files; it funnels through the same
//! [`parse_cell`] rules, so both paths load identical values.

use crate::csv::parse_csv;
use crate::error::TransformError;
use mscope_db::{ColumnType, Database, Schema, Value};

/// The one shared cell-normalization rule for *typed* (non-text) columns:
/// trims ASCII whitespace and maps an empty or `-` cell to `None` (the
/// SAR/IOstat "no sample" marker). Schema inference and cell loading both
/// route through this function, so the types inferred from a cell are
/// provably the types its loaded value carries.
///
/// Text columns deliberately do **not** use this at load time — a
/// legitimate `-` or padded string in a text column must load verbatim
/// (see [`parse_cell`]).
pub fn normalize_cell(raw: &str) -> Option<&str> {
    let t = raw.trim();
    if t.is_empty() || t == "-" {
        None
    } else {
        Some(t)
    }
}

/// Parses a raw cell into a value of the column's inferred type.
///
/// For numeric / timestamp / bool columns the cell is first routed through
/// [`normalize_cell`]: whitespace is trimmed and empty / `-` loads as
/// [`Value::Null`], matching the SAR and IOstat "no sample" conventions.
/// **Text columns load verbatim** — only a fully empty cell (the CSV
/// rendering of a missing field) becomes Null; `-`, padding, and interior
/// whitespace are all real data and are preserved exactly.
///
/// # Errors
///
/// [`TransformError::BadCell`] when the text cannot be read as the type —
/// the schema was inferred from this very data, so a failure here means the
/// pipeline is internally inconsistent and must not load silently-wrong
/// numbers.
pub fn parse_cell(
    table: &str,
    column: &str,
    ty: ColumnType,
    raw: &str,
) -> Result<Value, TransformError> {
    if let ColumnType::Null | ColumnType::Text = ty {
        return Ok(if raw.is_empty() {
            Value::Null
        } else {
            Value::Text(raw.to_string())
        });
    }
    let Some(t) = normalize_cell(raw) else {
        return Ok(Value::Null);
    };
    let bad = || TransformError::BadCell {
        table: table.to_string(),
        column: column.to_string(),
        value: raw.to_string(),
        expected: ty,
    };
    match ty {
        ColumnType::Null | ColumnType::Text => Ok(Value::Text(raw.to_string())),
        ColumnType::Bool => match t {
            "true" | "TRUE" | "True" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "False" => Ok(Value::Bool(false)),
            _ => Err(bad()),
        },
        ColumnType::Int => t.parse::<i64>().map(Value::Int).map_err(|_| bad()),
        ColumnType::Float => t.parse::<f64>().map(Value::Float).map_err(|_| bad()),
        ColumnType::Timestamp => mscope_sim::parse_wallclock(t)
            .map(|ts| Value::Timestamp(ts.as_micros() as i64))
            .ok_or_else(bad),
    }
}

/// Creates (or verifies) the destination table and batch-loads typed rows —
/// the direct, zero-round-trip importer path. Returns the number of rows
/// loaded; on any error nothing is loaded into the table.
///
/// # Errors
///
/// Warehouse errors: schema conflicts with an existing table, row arity or
/// type mismatches.
pub fn import_rows(
    db: &mut Database,
    table: &str,
    schema: &Schema,
    rows: Vec<Vec<Value>>,
) -> Result<usize, TransformError> {
    db.ensure_table(table, schema.clone())
        .map_err(TransformError::Db)?;
    db.insert_batch(table, rows).map_err(TransformError::Db)
}

/// Creates (or verifies) the destination table and loads CSV rows — the
/// export / foreign-file path. Cells are typed with the same [`parse_cell`]
/// rules the direct path uses, then batch-loaded. Returns the number of
/// rows loaded.
///
/// # Errors
///
/// CSV parse errors, header/schema mismatches, cell parse failures, and
/// warehouse errors (schema conflicts with an existing table).
pub fn import_csv(
    db: &mut Database,
    table: &str,
    schema: &Schema,
    csv: &str,
) -> Result<usize, TransformError> {
    let rows = parse_csv(csv).map_err(TransformError::Csv)?;
    let Some((header, data)) = rows.split_first() else {
        // Nothing to load; still materialize the (possibly empty) table.
        db.ensure_table(table, schema.clone())
            .map_err(TransformError::Db)?;
        return Ok(0);
    };
    let expected: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    let got: Vec<&str> = header.iter().map(String::as_str).collect();
    if expected != got {
        return Err(TransformError::HeaderMismatch {
            table: table.to_string(),
            expected: expected.join(","),
            got: got.join(","),
        });
    }
    let mut typed = Vec::with_capacity(data.len());
    for row in data {
        if row.len() != schema.len() {
            return Err(TransformError::HeaderMismatch {
                table: table.to_string(),
                expected: format!("{} columns", schema.len()),
                got: format!("{} columns", row.len()),
            });
        }
        let values: Vec<Value> = row
            .iter()
            .zip(schema.columns())
            .map(|(raw, col)| parse_cell(table, &col.name, col.ty, raw))
            .collect::<Result<_, _>>()?;
        typed.push(values);
    }
    import_rows(db, table, schema, typed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscope_db::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("t", ColumnType::Timestamp),
            Column::new("v", ColumnType::Float),
            Column::new("n", ColumnType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn loads_typed_rows() {
        let mut db = Database::new();
        let csv = "t,v,n\n00:00:01.000000,12.5,apache0\n00:00:02.000000,13.0,apache0\n";
        let n = import_csv(&mut db, "m", &schema(), csv).unwrap();
        assert_eq!(n, 2);
        let t = db.require("m").unwrap();
        assert_eq!(t.cell(0, "t"), Some(&Value::Timestamp(1_000_000)));
        assert_eq!(t.cell(1, "v"), Some(&Value::Float(13.0)));
    }

    #[test]
    fn numeric_nulls_load_as_null() {
        let mut db = Database::new();
        let csv = "t,v,n\n00:00:01.000000,,x\n-, - ,y\n";
        import_csv(&mut db, "m", &schema(), csv).unwrap();
        let t = db.require("m").unwrap();
        assert_eq!(t.cell(0, "v"), Some(&Value::Null));
        assert_eq!(t.cell(1, "t"), Some(&Value::Null));
        assert_eq!(t.cell(1, "v"), Some(&Value::Null), "padded dash is null");
    }

    #[test]
    fn text_cells_load_verbatim() {
        let mut db = Database::new();
        // `-` and padded strings are legitimate text values; only a fully
        // empty cell (a missing field) is null.
        let csv =
            "t,v,n\n00:00:01.000000,1.0,-\n00:00:02.000000,2.0,\" x \"\n00:00:03.000000,3.0,\n";
        import_csv(&mut db, "m", &schema(), csv).unwrap();
        let t = db.require("m").unwrap();
        assert_eq!(t.cell(0, "n"), Some(&Value::Text("-".into())));
        assert_eq!(t.cell(1, "n"), Some(&Value::Text(" x ".into())));
        assert_eq!(t.cell(2, "n"), Some(&Value::Null));
    }

    #[test]
    fn import_rows_direct_path() {
        let mut db = Database::new();
        let rows = vec![
            vec![
                Value::Timestamp(1_000_000),
                Value::Float(12.5),
                Value::Text("apache0".into()),
            ],
            vec![Value::Null, Value::Null, Value::Null],
        ];
        let n = import_rows(&mut db, "m", &schema(), rows).unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.require("m").unwrap().row_count(), 2);
        // A type-mismatched batch loads nothing.
        let err = import_rows(
            &mut db,
            "m",
            &schema(),
            vec![vec![
                Value::Text("boom".into()),
                Value::Float(1.0),
                Value::Null,
            ]],
        );
        assert!(matches!(err, Err(TransformError::Db(_))));
        assert_eq!(db.require("m").unwrap().row_count(), 2);
    }

    #[test]
    fn header_mismatch_rejected() {
        let mut db = Database::new();
        let csv = "wrong,header,row\n1,2,3\n";
        assert!(matches!(
            import_csv(&mut db, "m", &schema(), csv),
            Err(TransformError::HeaderMismatch { .. })
        ));
    }

    #[test]
    fn bad_cell_rejected() {
        let mut db = Database::new();
        let csv = "t,v,n\nnot-a-time,1.0,x\n";
        assert!(matches!(
            import_csv(&mut db, "m", &schema(), csv),
            Err(TransformError::BadCell { .. })
        ));
    }

    #[test]
    fn empty_csv_creates_empty_table() {
        let mut db = Database::new();
        let n = import_csv(&mut db, "m", &schema(), "").unwrap();
        assert_eq!(n, 0);
        assert_eq!(db.require("m").unwrap().row_count(), 0);
    }

    #[test]
    fn second_load_appends_when_schema_matches() {
        let mut db = Database::new();
        let csv = "t,v,n\n00:00:01.000000,1.0,x\n";
        import_csv(&mut db, "m", &schema(), csv).unwrap();
        import_csv(&mut db, "m", &schema(), csv).unwrap();
        assert_eq!(db.require("m").unwrap().row_count(), 2);
    }

    #[test]
    fn normalize_cell_rules() {
        assert_eq!(normalize_cell("42"), Some("42"));
        assert_eq!(normalize_cell("  42 "), Some("42"));
        assert_eq!(normalize_cell(""), None);
        assert_eq!(normalize_cell("   "), None);
        assert_eq!(normalize_cell("-"), None);
        assert_eq!(normalize_cell(" - "), None);
        assert_eq!(normalize_cell("-1"), Some("-1"), "negative number kept");
    }

    #[test]
    fn parse_cell_all_types() {
        assert_eq!(
            parse_cell("t", "c", ColumnType::Int, "42").unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            parse_cell("t", "c", ColumnType::Bool, "true").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            parse_cell("t", "c", ColumnType::Float, "1e2").unwrap(),
            Value::Float(100.0)
        );
        assert_eq!(
            parse_cell("t", "c", ColumnType::Text, "hi").unwrap(),
            Value::Text("hi".into())
        );
        assert_eq!(
            parse_cell("t", "c", ColumnType::Text, "-").unwrap(),
            Value::Text("-".into())
        );
        assert_eq!(
            parse_cell("t", "c", ColumnType::Int, " - ").unwrap(),
            Value::Null
        );
        assert!(parse_cell("t", "c", ColumnType::Int, "x").is_err());
        assert!(parse_cell("t", "c", ColumnType::Bool, "2").is_err());
    }
}
