//! mScope Data Importer (paper §III-B3, final stage): creates warehouse
//! tables from inferred schemas and loads the CSV tuples.

use crate::csv::parse_csv;
use crate::error::TransformError;
use mscope_db::{ColumnType, Database, Schema, Value};

/// Parses a raw CSV cell into a value of the column's inferred type.
///
/// Empty cells and `"-"` load as [`Value::Null`] regardless of type.
///
/// # Errors
///
/// [`TransformError::BadCell`] when the text cannot be read as the type —
/// the schema was inferred from this very data, so a failure here means the
/// pipeline is internally inconsistent and must not load silently-wrong
/// numbers.
pub fn parse_cell(
    table: &str,
    column: &str,
    ty: ColumnType,
    raw: &str,
) -> Result<Value, TransformError> {
    let t = raw.trim();
    if t.is_empty() || t == "-" {
        return Ok(Value::Null);
    }
    let bad = || TransformError::BadCell {
        table: table.to_string(),
        column: column.to_string(),
        value: raw.to_string(),
        expected: ty,
    };
    match ty {
        ColumnType::Null | ColumnType::Text => Ok(Value::Text(t.to_string())),
        ColumnType::Bool => match t {
            "true" | "TRUE" | "True" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "False" => Ok(Value::Bool(false)),
            _ => Err(bad()),
        },
        ColumnType::Int => t.parse::<i64>().map(Value::Int).map_err(|_| bad()),
        ColumnType::Float => t.parse::<f64>().map(Value::Float).map_err(|_| bad()),
        ColumnType::Timestamp => mscope_sim::parse_wallclock(t)
            .map(|ts| Value::Timestamp(ts.as_micros() as i64))
            .ok_or_else(bad),
    }
}

/// Creates (or verifies) the destination table and loads the CSV rows.
/// Returns the number of rows loaded.
///
/// # Errors
///
/// CSV parse errors, header/schema mismatches, cell parse failures, and
/// warehouse errors (schema conflicts with an existing table).
pub fn import_csv(
    db: &mut Database,
    table: &str,
    schema: &Schema,
    csv: &str,
) -> Result<usize, TransformError> {
    let rows = parse_csv(csv).map_err(TransformError::Csv)?;
    let Some((header, data)) = rows.split_first() else {
        // Nothing to load; still materialize the (possibly empty) table.
        db.ensure_table(table, schema.clone())
            .map_err(TransformError::Db)?;
        return Ok(0);
    };
    let expected: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    let got: Vec<&str> = header.iter().map(String::as_str).collect();
    if expected != got {
        return Err(TransformError::HeaderMismatch {
            table: table.to_string(),
            expected: expected.join(","),
            got: got.join(","),
        });
    }
    db.ensure_table(table, schema.clone())
        .map_err(TransformError::Db)?;
    let mut loaded = 0usize;
    for row in data {
        if row.len() != schema.len() {
            return Err(TransformError::HeaderMismatch {
                table: table.to_string(),
                expected: format!("{} columns", schema.len()),
                got: format!("{} columns", row.len()),
            });
        }
        let values: Vec<Value> = row
            .iter()
            .zip(schema.columns())
            .map(|(raw, col)| parse_cell(table, &col.name, col.ty, raw))
            .collect::<Result<_, _>>()?;
        db.insert(table, values).map_err(TransformError::Db)?;
        loaded += 1;
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscope_db::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("t", ColumnType::Timestamp),
            Column::new("v", ColumnType::Float),
            Column::new("n", ColumnType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn loads_typed_rows() {
        let mut db = Database::new();
        let csv = "t,v,n\n00:00:01.000000,12.5,apache0\n00:00:02.000000,13.0,apache0\n";
        let n = import_csv(&mut db, "m", &schema(), csv).unwrap();
        assert_eq!(n, 2);
        let t = db.require("m").unwrap();
        assert_eq!(t.cell(0, "t"), Some(&Value::Timestamp(1_000_000)));
        assert_eq!(t.cell(1, "v"), Some(&Value::Float(13.0)));
    }

    #[test]
    fn nulls_load_as_null() {
        let mut db = Database::new();
        let csv = "t,v,n\n00:00:01.000000,,-\n";
        import_csv(&mut db, "m", &schema(), csv).unwrap();
        let t = db.require("m").unwrap();
        assert_eq!(t.cell(0, "v"), Some(&Value::Null));
        assert_eq!(t.cell(0, "n"), Some(&Value::Null));
    }

    #[test]
    fn header_mismatch_rejected() {
        let mut db = Database::new();
        let csv = "wrong,header,row\n1,2,3\n";
        assert!(matches!(
            import_csv(&mut db, "m", &schema(), csv),
            Err(TransformError::HeaderMismatch { .. })
        ));
    }

    #[test]
    fn bad_cell_rejected() {
        let mut db = Database::new();
        let csv = "t,v,n\nnot-a-time,1.0,x\n";
        assert!(matches!(
            import_csv(&mut db, "m", &schema(), csv),
            Err(TransformError::BadCell { .. })
        ));
    }

    #[test]
    fn empty_csv_creates_empty_table() {
        let mut db = Database::new();
        let n = import_csv(&mut db, "m", &schema(), "").unwrap();
        assert_eq!(n, 0);
        assert_eq!(db.require("m").unwrap().row_count(), 0);
    }

    #[test]
    fn second_load_appends_when_schema_matches() {
        let mut db = Database::new();
        let csv = "t,v,n\n00:00:01.000000,1.0,x\n";
        import_csv(&mut db, "m", &schema(), csv).unwrap();
        import_csv(&mut db, "m", &schema(), csv).unwrap();
        assert_eq!(db.require("m").unwrap().row_count(), 2);
    }

    #[test]
    fn parse_cell_all_types() {
        assert_eq!(
            parse_cell("t", "c", ColumnType::Int, "42").unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            parse_cell("t", "c", ColumnType::Bool, "true").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            parse_cell("t", "c", ColumnType::Float, "1e2").unwrap(),
            Value::Float(100.0)
        );
        assert_eq!(
            parse_cell("t", "c", ColumnType::Text, "hi").unwrap(),
            Value::Text("hi".into())
        );
        assert!(parse_cell("t", "c", ColumnType::Int, "x").is_err());
        assert!(parse_cell("t", "c", ColumnType::Bool, "2").is_err());
    }
}
