//! RFC 4180-style CSV writing and reading — the transformer's final
//! intermediate format before warehouse import.

/// Quotes a field if it contains a comma, quote, or newline.
pub fn quote_field(field: &str) -> String {
    let mut out = String::with_capacity(field.len() + 2);
    push_quoted(&mut out, field);
    out
}

/// Appends `field` to `out`, quoted and escaped only when necessary —
/// the zero-intermediate-allocation core shared by [`quote_field`] and
/// [`write_csv`].
fn push_quoted(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serializes rows (first row conventionally the header) to CSV text.
pub fn write_csv<S: AsRef<str>>(rows: &[Vec<S>]) -> String {
    // Exact for unquoted content: every field byte plus one separator or
    // newline per field; quoted fields grow the buffer at most once more.
    let bytes: usize = rows
        .iter()
        .map(|r| r.iter().map(|f| f.as_ref().len()).sum::<usize>() + r.len().max(1))
        .sum();
    let mut out = String::with_capacity(bytes);
    for row in rows {
        for (i, f) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_quoted(&mut out, f.as_ref());
        }
        out.push('\n');
    }
    out
}

/// CSV parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into rows of fields, honouring quoted fields with
/// embedded commas, quotes, and newlines.
///
/// # Errors
///
/// [`CsvError`] on an unterminated quote or stray quote character.
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(CsvError {
                            line,
                            msg: "quote in the middle of an unquoted field".into(),
                        });
                    }
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                // A carriage return is line-ending chrome only as part of
                // CRLF; a bare `\r` inside an unquoted field is data (some
                // foreign logs carry them) and must survive the round-trip.
                '\r' => {
                    if chars.peek() != Some(&'\n') {
                        field.push('\r');
                    }
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            line,
            msg: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_roundtrip() {
        let rows = vec![vec!["a", "b", "c"], vec!["1", "2", "3"]];
        let text = write_csv(&rows);
        assert_eq!(text, "a,b,c\n1,2,3\n");
        let back = parse_csv(&text).unwrap();
        assert_eq!(back, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn quoting_special_chars() {
        let rows = vec![vec!["plain", "with,comma", "with\"quote", "with\nnewline"]];
        let text = write_csv(&rows);
        let back = parse_csv(&text).unwrap();
        assert_eq!(back[0][1], "with,comma");
        assert_eq!(back[0][2], "with\"quote");
        assert_eq!(back[0][3], "with\nnewline");
    }

    #[test]
    fn empty_fields_preserved() {
        let back = parse_csv("a,,c\n,,\n").unwrap();
        assert_eq!(back, vec![vec!["a", "", "c"], vec!["", "", ""]]);
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let back = parse_csv("a,b").unwrap();
        assert_eq!(back, vec![vec!["a", "b"]]);
    }

    #[test]
    fn crlf_tolerated() {
        let back = parse_csv("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(back, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn bare_cr_is_field_data() {
        // Only `\r\n` is a line ending; a lone `\r` stays in the field.
        let back = parse_csv("a\rb,c\nd,e\r\n").unwrap();
        assert_eq!(back, vec![vec!["a\rb", "c"], vec!["d", "e"]]);
    }

    #[test]
    fn cr_roundtrips_through_quote_field() {
        let rows = vec![vec!["bare\rcr", "crlf\r\ninside", "plain"]];
        assert!(
            quote_field("bare\rcr").starts_with('"'),
            "cr forces quoting"
        );
        let text = write_csv(&rows);
        let back = parse_csv(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn errors_reported() {
        assert!(parse_csv("a\"b,c\n").is_err());
        assert!(parse_csv("\"unterminated").is_err());
    }

    #[test]
    fn empty_input_is_no_rows() {
        assert_eq!(parse_csv("").unwrap().len(), 0);
    }
}
