//! mScope XMLtoCSV Converter (paper §III-B3): turns annotated XML into an
//! inferred schema plus typed rows, separating the parsers' data annotation
//! from warehouse schema creation.
//!
//! Schema inference is bottom-up exactly as described: the column set is
//! the **union** of all tags appearing in any entry (first-appearance
//! order), and each column's type is the **narrowest** type in the lattice
//! that admits every observed value.
//!
//! Historically this stage emitted CSV text that the importer immediately
//! re-parsed. The conversion now goes straight to typed [`Value`] rows —
//! every cell is classified once, by [`normalize_cell`], for both
//! inference and loading — and CSV is an on-demand *export* artifact
//! ([`ConvertedTable::to_csv`]) that round-trips losslessly through
//! [`import_csv`](crate::import_csv).

use crate::csv::write_csv;
use crate::error::TransformError;
use crate::import::{normalize_cell, parse_cell};
use crate::xml::XmlNode;
use mscope_db::{Column, ColumnType, Schema, Value};
use std::collections::BTreeSet;

/// Result of converting one table's worth of annotated XML: the inferred
/// schema plus the typed rows ready for direct warehouse load.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertedTable {
    /// Inferred schema.
    pub schema: Schema,
    /// Typed rows, one per `<entry>`, cells in schema column order.
    /// Missing fields are [`Value::Null`].
    pub rows: Vec<Vec<Value>>,
}

impl ConvertedTable {
    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as CSV text (header row + one line per row) —
    /// the on-demand export artifact. Loading this text back with
    /// [`import_csv`](crate::import_csv) against the same schema
    /// reproduces the typed rows exactly.
    pub fn to_csv(&self) -> String {
        let mut grid: Vec<Vec<String>> = Vec::with_capacity(self.rows.len() + 1);
        grid.push(
            self.schema
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect(),
        );
        for row in &self.rows {
            grid.push(row.iter().map(Value::render).collect());
        }
        write_csv(&grid)
    }
}

/// Converts one or more annotated `<log>` documents (all destined for the
/// same table) into an inferred schema and typed rows.
///
/// Converting the documents together is what makes the column-set union and
/// type join span *all* inputs — two Apache replicas' logs cannot produce
/// conflicting schemas.
///
/// # Errors
///
/// [`TransformError::SchemaInference`] if an entry carries duplicate field
/// names (ambiguous annotation); [`TransformError::BadCell`] if a cell
/// fails to load as the type inferred for its column (internally
/// inconsistent pipeline — cannot happen when inference and loading share
/// [`normalize_cell`], but never loads silently-wrong data).
pub fn convert_xml(docs: &[XmlNode]) -> Result<ConvertedTable, TransformError> {
    // Pass 1: union of columns (first-appearance order) and type join.
    let mut columns: Vec<(String, ColumnType)> = Vec::new();
    let mut entry_count = 0usize;
    for doc in docs {
        for entry in doc.children.iter().filter(|c| c.name == "entry") {
            entry_count += 1;
            let mut seen_in_entry: BTreeSet<&str> = BTreeSet::new();
            for field in &entry.children {
                if !seen_in_entry.insert(&field.name) {
                    return Err(TransformError::SchemaInference(format!(
                        "duplicate field `{}` within one entry of `{}`",
                        field.name,
                        doc.get_attr("source").unwrap_or("?")
                    )));
                }
                // The same trim/null rules the importer applies: a cell the
                // importer would load as Null must not widen the column.
                let vt = match normalize_cell(&field.text) {
                    None => ColumnType::Null,
                    Some(t) => Value::infer(t).column_type(),
                };
                match columns.iter_mut().find(|(n, _)| *n == field.name) {
                    Some((_, ty)) => *ty = ty.unify(vt),
                    // perf: one owned name per *distinct* column, not per field.
                    None => columns.push((field.name.clone(), vt)),
                }
            }
        }
    }
    // Columns never observed with a non-null value stay Null; widen to Text
    // so the warehouse can hold whatever later loads bring.
    let schema = Schema::new(
        columns
            .iter()
            .map(|(n, t)| {
                let t = if *t == ColumnType::Null {
                    ColumnType::Text
                } else {
                    *t
                };
                Column::new(n.clone(), t)
            })
            .collect(),
    )
    .map_err(|e| TransformError::SchemaInference(e.to_string()))?;

    // Pass 2: typed rows, through the exact cell rules the CSV importer
    // uses, so the direct and export paths are value-identical.
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(entry_count);
    for doc in docs {
        let source = doc.get_attr("source").unwrap_or("?");
        for entry in doc.children.iter().filter(|c| c.name == "entry") {
            let row = schema
                .columns()
                .iter()
                .map(|c| match entry.find(&c.name) {
                    Some(f) => parse_cell(source, &c.name, c.ty, &f.text),
                    None => Ok(Value::Null),
                })
                .collect::<Result<Vec<Value>, _>>()?;
            rows.push(row);
        }
    }
    Ok(ConvertedTable { schema, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fields: &[(&str, &str)]) -> XmlNode {
        let mut e = XmlNode::new("entry");
        for (k, v) in fields {
            e.children.push(XmlNode::new(*k).with_text(*v));
        }
        e
    }

    fn doc(entries: Vec<XmlNode>) -> XmlNode {
        let mut d = XmlNode::new("log").attr("source", "t.log");
        d.children = entries;
        d
    }

    #[test]
    fn schema_is_union_of_tags() {
        let d = doc(vec![
            entry(&[("a", "1"), ("b", "x")]),
            entry(&[("a", "2"), ("c", "3.5")]),
        ]);
        let out = convert_xml(&[d]).unwrap();
        let names: Vec<&str> = out
            .schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(out.row_count(), 2);
        // Missing cells are typed nulls, rendered empty in the CSV export.
        assert_eq!(out.rows[1][1], Value::Null);
        assert!(out.to_csv().contains("2,,3.5"));
    }

    #[test]
    fn types_are_narrowest_that_admit_all() {
        let d = doc(vec![
            entry(&[("n", "1"), ("t", "00:00:01.000000"), ("s", "5")]),
            entry(&[("n", "2.5"), ("t", "00:00:02.000000"), ("s", "five")]),
        ]);
        let out = convert_xml(&[d]).unwrap();
        let ty = |name: &str| out.schema.columns()[out.schema.index_of(name).unwrap()].ty;
        assert_eq!(ty("n"), ColumnType::Float, "int ∪ float = float");
        assert_eq!(ty("t"), ColumnType::Timestamp);
        assert_eq!(ty("s"), ColumnType::Text, "int ∪ text = text");
        // Cells are loaded as the inferred types.
        assert_eq!(out.rows[0][0], Value::Float(1.0));
        assert_eq!(out.rows[0][1], Value::Timestamp(1_000_000));
        assert_eq!(out.rows[0][2], Value::Text("5".into()));
    }

    #[test]
    fn null_values_do_not_widen() {
        let d = doc(vec![
            entry(&[("ds", "-")]),
            entry(&[("ds", "00:00:01.000000")]),
        ]);
        let out = convert_xml(&[d]).unwrap();
        assert_eq!(out.schema.columns()[0].ty, ColumnType::Timestamp);
        assert_eq!(out.rows[0][0], Value::Null);
    }

    #[test]
    fn all_null_column_becomes_text() {
        let d = doc(vec![entry(&[("x", "-")])]);
        let out = convert_xml(&[d]).unwrap();
        assert_eq!(out.schema.columns()[0].ty, ColumnType::Text);
        // …and the dash, now a text cell, survives verbatim instead of
        // being mutated to Null by the loader.
        assert_eq!(out.rows[0][0], Value::Text("-".into()));
    }

    #[test]
    fn text_cells_survive_verbatim() {
        let d = doc(vec![
            entry(&[("s", " padded "), ("u", "plain")]),
            entry(&[("s", "-"), ("u", "words words")]),
        ]);
        let out = convert_xml(&[d]).unwrap();
        assert_eq!(out.rows[0][0], Value::Text(" padded ".into()));
        assert_eq!(out.rows[1][0], Value::Text("-".into()));
        // The CSV export round-trips them losslessly too.
        let mut db = mscope_db::Database::new();
        crate::import::import_csv(&mut db, "t", &out.schema, &out.to_csv()).unwrap();
        let t = db.require("t").unwrap();
        assert_eq!(t.cell(0, "s"), Some(&Value::Text(" padded ".into())));
        assert_eq!(t.cell(1, "s"), Some(&Value::Text("-".into())));
    }

    #[test]
    fn union_spans_multiple_documents() {
        let d1 = doc(vec![entry(&[("a", "1")])]);
        let d2 = doc(vec![entry(&[("a", "x")])]);
        let out = convert_xml(&[d1, d2]).unwrap();
        assert_eq!(out.schema.columns()[0].ty, ColumnType::Text);
        assert_eq!(out.row_count(), 2);
    }

    #[test]
    fn duplicate_field_in_entry_rejected() {
        let d = doc(vec![entry(&[("a", "1"), ("a", "2")])]);
        assert!(matches!(
            convert_xml(&[d]),
            Err(TransformError::SchemaInference(_))
        ));
    }

    #[test]
    fn empty_input_yields_empty_schema() {
        let out = convert_xml(&[doc(vec![])]).unwrap();
        assert_eq!(out.row_count(), 0);
        assert!(out.schema.is_empty());
    }

    #[test]
    fn csv_export_quotes_commas_in_text() {
        let d = doc(vec![entry(&[("sql", "SELECT a,b FROM t ")])]);
        let out = convert_xml(&[d]).unwrap();
        assert!(out.to_csv().contains("\"SELECT a,b FROM t \""));
    }
}
