//! mScope XMLtoCSV Converter (paper §III-B3): turns annotated XML into an
//! inferred schema plus CSV, separating the parsers' data annotation from
//! warehouse schema creation.
//!
//! Schema inference is bottom-up exactly as described: the column set is
//! the **union** of all tags appearing in any entry (first-appearance
//! order), and each column's type is the **narrowest** type in the lattice
//! that admits every observed value.

use crate::csv::write_csv;
use crate::error::TransformError;
use crate::xml::XmlNode;
use mscope_db::{Column, ColumnType, Schema, Value};

/// Result of converting one table's worth of annotated XML.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertedTable {
    /// Inferred schema.
    pub schema: Schema,
    /// CSV text: header row + one row per entry.
    pub csv: String,
    /// Number of data rows.
    pub rows: usize,
}

/// Converts one or more annotated `<log>` documents (all destined for the
/// same table) into an inferred schema and CSV.
///
/// Converting the documents together is what makes the column-set union and
/// type join span *all* inputs — two Apache replicas' logs cannot produce
/// conflicting schemas.
///
/// # Errors
///
/// [`TransformError::SchemaInference`] if an entry carries duplicate field
/// names (ambiguous annotation).
pub fn xml_to_csv(docs: &[XmlNode]) -> Result<ConvertedTable, TransformError> {
    // Pass 1: union of columns (first-appearance order) and type join.
    let mut columns: Vec<(String, ColumnType)> = Vec::new();
    let mut entry_count = 0usize;
    for doc in docs {
        for entry in doc.children.iter().filter(|c| c.name == "entry") {
            entry_count += 1;
            let mut seen_in_entry: Vec<&str> = Vec::new();
            for field in &entry.children {
                if seen_in_entry.contains(&field.name.as_str()) {
                    return Err(TransformError::SchemaInference(format!(
                        "duplicate field `{}` within one entry of `{}`",
                        field.name,
                        doc.get_attr("source").unwrap_or("?")
                    )));
                }
                seen_in_entry.push(&field.name);
                let vt = Value::infer(&field.text).column_type();
                match columns.iter_mut().find(|(n, _)| *n == field.name) {
                    Some((_, ty)) => *ty = ty.unify(vt),
                    None => columns.push((field.name.clone(), vt)),
                }
            }
        }
    }
    // Columns never observed with a non-null value stay Null; widen to Text
    // so the warehouse can hold whatever later loads bring.
    let schema = Schema::new(
        columns
            .iter()
            .map(|(n, t)| {
                let t = if *t == ColumnType::Null {
                    ColumnType::Text
                } else {
                    *t
                };
                Column::new(n.clone(), t)
            })
            .collect(),
    )
    .map_err(|e| TransformError::SchemaInference(e.to_string()))?;

    // Pass 2: rows.
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(entry_count + 1);
    rows.push(schema.columns().iter().map(|c| c.name.clone()).collect());
    for doc in docs {
        for entry in doc.children.iter().filter(|c| c.name == "entry") {
            let row = schema
                .columns()
                .iter()
                .map(|c| {
                    entry
                        .find(&c.name)
                        .map(|f| f.text.clone())
                        .unwrap_or_default()
                })
                .collect();
            rows.push(row);
        }
    }
    Ok(ConvertedTable {
        schema,
        csv: write_csv(&rows),
        rows: entry_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fields: &[(&str, &str)]) -> XmlNode {
        let mut e = XmlNode::new("entry");
        for (k, v) in fields {
            e.children.push(XmlNode::new(*k).with_text(*v));
        }
        e
    }

    fn doc(entries: Vec<XmlNode>) -> XmlNode {
        let mut d = XmlNode::new("log").attr("source", "t.log");
        d.children = entries;
        d
    }

    #[test]
    fn schema_is_union_of_tags() {
        let d = doc(vec![
            entry(&[("a", "1"), ("b", "x")]),
            entry(&[("a", "2"), ("c", "3.5")]),
        ]);
        let out = xml_to_csv(&[d]).unwrap();
        let names: Vec<&str> = out
            .schema
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(out.rows, 2);
        // Missing cells render empty.
        assert!(out.csv.contains("2,,3.5"));
    }

    #[test]
    fn types_are_narrowest_that_admit_all() {
        let d = doc(vec![
            entry(&[("n", "1"), ("t", "00:00:01.000000"), ("s", "5")]),
            entry(&[("n", "2.5"), ("t", "00:00:02.000000"), ("s", "five")]),
        ]);
        let out = xml_to_csv(&[d]).unwrap();
        let ty = |name: &str| out.schema.columns()[out.schema.index_of(name).unwrap()].ty;
        assert_eq!(ty("n"), ColumnType::Float, "int ∪ float = float");
        assert_eq!(ty("t"), ColumnType::Timestamp);
        assert_eq!(ty("s"), ColumnType::Text, "int ∪ text = text");
    }

    #[test]
    fn null_values_do_not_widen() {
        let d = doc(vec![
            entry(&[("ds", "-")]),
            entry(&[("ds", "00:00:01.000000")]),
        ]);
        let out = xml_to_csv(&[d]).unwrap();
        assert_eq!(out.schema.columns()[0].ty, ColumnType::Timestamp);
    }

    #[test]
    fn all_null_column_becomes_text() {
        let d = doc(vec![entry(&[("x", "-")])]);
        let out = xml_to_csv(&[d]).unwrap();
        assert_eq!(out.schema.columns()[0].ty, ColumnType::Text);
    }

    #[test]
    fn union_spans_multiple_documents() {
        let d1 = doc(vec![entry(&[("a", "1")])]);
        let d2 = doc(vec![entry(&[("a", "x")])]);
        let out = xml_to_csv(&[d1, d2]).unwrap();
        assert_eq!(out.schema.columns()[0].ty, ColumnType::Text);
        assert_eq!(out.rows, 2);
    }

    #[test]
    fn duplicate_field_in_entry_rejected() {
        let d = doc(vec![entry(&[("a", "1"), ("a", "2")])]);
        assert!(matches!(
            xml_to_csv(&[d]),
            Err(TransformError::SchemaInference(_))
        ));
    }

    #[test]
    fn empty_input_yields_empty_schema() {
        let out = xml_to_csv(&[doc(vec![])]).unwrap();
        assert_eq!(out.rows, 0);
        assert!(out.schema.is_empty());
    }

    #[test]
    fn csv_quotes_commas_in_text() {
        let d = doc(vec![entry(&[("sql", "SELECT a,b FROM t ")])]);
        let out = xml_to_csv(&[d]).unwrap();
        assert!(out.csv.contains("\"SELECT a,b FROM t \""));
    }
}
