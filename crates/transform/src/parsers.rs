//! Concrete mScopeParser declarations for every monitor in the suite.
//!
//! One function per tool builds the instruction set that teaches the staged
//! engine (or the direct-XML mapping) how to read that tool's native log.
//! [`declaration_for`] is the paper's "parsing declaration" step: given a
//! log file's manifest entry, it returns the complete file→parser mapping
//! record.

use crate::declare::{
    BlockSpec, LineMatcher, ParserKind, ParserSpec, ParsingDeclaration, XmlMapping,
};
use crate::pattern::{timestamp_suffix_tokens, Pattern, Tok};
use mscope_monitors::{LogFileMeta, MonitorKind};
use mscope_ntier::TierKind;

fn pat(toks: Vec<Tok>) -> Pattern {
    Pattern::new(toks)
}

fn with_suffix(mut toks: Vec<Tok>) -> Pattern {
    toks.push(Tok::Ws);
    toks.extend(timestamp_suffix_tokens());
    Pattern::new(toks)
}

/// Collectl `-P` CSV: `#`-prefixed header, then one space-separated record
/// per line.
pub fn collectl_csv_spec() -> ParserSpec {
    ParserSpec {
        name: "Collectl mScopeParser".into(),
        filters: vec![LineMatcher::Prefix("#".into()), LineMatcher::Blank],
        context: vec![],
        records: vec![pat(vec![
            Tok::wall("time"),
            Tok::Ws,
            Tok::cap("cpu_user"),
            Tok::Ws,
            Tok::cap("cpu_sys"),
            Tok::Ws,
            Tok::cap("cpu_iowait"),
            Tok::Ws,
            Tok::cap("cpu_idle"),
            Tok::Ws,
            Tok::cap("mem_dirty"),
            Tok::Ws,
            Tok::cap("mem_used_kb"),
            Tok::Ws,
            Tok::cap("disk_write_kb"),
            Tok::Ws,
            Tok::cap("disk_writes"),
            Tok::Ws,
            Tok::cap("disk_util"),
            Tok::Ws,
            Tok::cap("net_rx_kb"),
            Tok::Ws,
            Tok::cap("net_tx_kb"),
        ])],
        blocks: None,
    }
}

/// Collectl brief mode: `### RECORD n (time) ###` blocks with positional
/// subsystem lines — the line-sequence instruction style.
pub fn collectl_brief_spec() -> ParserSpec {
    ParserSpec {
        name: "Collectl brief mScopeParser".into(),
        filters: vec![LineMatcher::Blank],
        context: vec![],
        records: vec![],
        blocks: Some(BlockSpec {
            marker: pat(vec![
                Tok::lit("### RECORD"),
                Tok::Ws,
                Tok::cap("record"),
                Tok::Ws,
                Tok::lit("("),
                Tok::wall("time"),
                Tok::lit(")"),
                Tok::Ws,
                Tok::lit("###"),
            ]),
            lines: vec![
                None, // "# CPU SUMMARY"
                None, // column header
                Some(pat(vec![
                    Tok::cap("cpu_user"),
                    Tok::Ws,
                    Tok::cap("cpu_sys"),
                    Tok::Ws,
                    Tok::cap("cpu_iowait"),
                    Tok::Ws,
                    Tok::cap("cpu_idle"),
                ])),
                None, // "# DISK SUMMARY"
                None, // column header
                Some(pat(vec![
                    Tok::cap("disk_write_kb"),
                    Tok::Ws,
                    Tok::cap("disk_writes"),
                    Tok::Ws,
                    Tok::cap("disk_util"),
                ])),
                None, // "# MEMORY"
                None, // column header
                Some(pat(vec![
                    Tok::cap("mem_dirty"),
                    Tok::Ws,
                    Tok::cap("mem_used_kb"),
                ])),
            ],
        }),
    }
}

/// SAR tabular text: banner line, blanks, periodically repeated column
/// headers, and `all`-CPU rows.
pub fn sar_text_spec() -> ParserSpec {
    ParserSpec {
        name: "SAR mScopeParser".into(),
        filters: vec![
            LineMatcher::Prefix("Linux".into()),
            LineMatcher::Blank,
            LineMatcher::Prefix("timestamp".into()),
        ],
        context: vec![],
        records: vec![pat(vec![
            Tok::wall("time"),
            Tok::Ws,
            Tok::lit("all"),
            Tok::Ws,
            Tok::cap("cpu_user"),
            Tok::Ws,
            Tok::cap("cpu_sys"),
            Tok::Ws,
            Tok::cap("cpu_iowait"),
            Tok::Ws,
            Tok::cap("cpu_idle"),
        ])],
        blocks: None,
    }
}

/// SAR memory report (`sar -r`).
pub fn sar_mem_spec() -> ParserSpec {
    ParserSpec {
        name: "SAR-mem mScopeParser".into(),
        filters: vec![
            LineMatcher::Prefix("Linux".into()),
            LineMatcher::Blank,
            LineMatcher::Prefix("timestamp".into()),
        ],
        records: vec![pat(vec![
            Tok::wall("time"),
            Tok::Ws,
            Tok::cap("mem_used_kb"),
            Tok::Ws,
            Tok::cap("mem_used_pct"),
            Tok::Ws,
            Tok::cap("mem_dirty_kb"),
        ])],
        context: vec![],
        blocks: None,
    }
}

/// SAR network report (`sar -n DEV`).
pub fn sar_net_spec() -> ParserSpec {
    ParserSpec {
        name: "SAR-net mScopeParser".into(),
        filters: vec![
            LineMatcher::Prefix("Linux".into()),
            LineMatcher::Blank,
            LineMatcher::Prefix("timestamp".into()),
        ],
        records: vec![pat(vec![
            Tok::wall("time"),
            Tok::Ws,
            Tok::lit("eth0"),
            Tok::Ws,
            Tok::cap("net_rx_kb"),
            Tok::Ws,
            Tok::cap("net_tx_kb"),
        ])],
        context: vec![],
        blocks: None,
    }
}

/// Upgraded SAR emitting XML — the direct path of Fig. 3 that "obviated"
/// the custom SAR parser.
pub fn sar_xml_mapping() -> XmlMapping {
    XmlMapping {
        entry_element: "timestamp".into(),
        entry_attrs: vec![("time".into(), "time".into())],
        leaf_attrs: vec![
            ("cpu".into(), "user".into(), "cpu_user".into()),
            ("cpu".into(), "system".into(), "cpu_sys".into()),
            ("cpu".into(), "iowait".into(), "cpu_iowait".into()),
            ("cpu".into(), "idle".into(), "cpu_idle".into()),
        ],
    }
}

/// IOstat: standalone timestamp lines provide sticky context; `sda` device
/// rows carry the data.
pub fn iostat_spec() -> ParserSpec {
    ParserSpec {
        name: "IOstat mScopeParser".into(),
        filters: vec![LineMatcher::Blank, LineMatcher::Prefix("Device:".into())],
        context: vec![pat(vec![Tok::wall("time")])],
        records: vec![pat(vec![
            Tok::lit("sda"),
            Tok::Ws,
            Tok::cap("disk_write_kb"),
            Tok::Ws,
            Tok::cap("disk_writes"),
            Tok::Ws,
            Tok::cap("disk_util"),
        ])],
        blocks: None,
    }
}

/// Apache event monitor log: combined access-log line extended with the
/// four timestamps (Appendix A).
pub fn apache_event_spec() -> ParserSpec {
    ParserSpec {
        name: "Apache mScopeParser".into(),
        filters: vec![LineMatcher::Blank],
        context: vec![],
        records: vec![with_suffix(vec![
            Tok::cap("client"),
            Tok::Ws,
            Tok::lit("- - ["),
            Tok::wall("wall"),
            Tok::lit("]"),
            Tok::Ws,
            Tok::lit("\"GET /rubbos/"),
            Tok::cap("interaction"),
            Tok::lit("?ID="),
            Tok::cap("request_id"),
            Tok::lit(" HTTP/1.1\""),
            Tok::Ws,
            Tok::cap("status"),
            Tok::Ws,
            Tok::cap("bytes"),
        ])],
        blocks: None,
    }
}

/// Tomcat request-log valve line.
pub fn tomcat_event_spec() -> ParserSpec {
    ParserSpec {
        name: "Tomcat mScopeParser".into(),
        filters: vec![LineMatcher::Blank],
        context: vec![],
        records: vec![with_suffix(vec![
            Tok::wall("wall"),
            Tok::Ws,
            Tok::lit("INFO [ajp-exec] RequestLog /servlet/"),
            Tok::cap("interaction"),
            Tok::lit(" ID="),
            Tok::cap("request_id"),
        ])],
        blocks: None,
    }
}

/// C-JDBC controller log line.
pub fn cjdbc_event_spec() -> ParserSpec {
    ParserSpec {
        name: "C-JDBC mScopeParser".into(),
        filters: vec![LineMatcher::Blank],
        context: vec![],
        records: vec![with_suffix(vec![
            Tok::wall("wall"),
            Tok::Ws,
            Tok::lit("[rubbos-vdb] virtualdatabase request ID="),
            Tok::cap("request_id"),
            Tok::Ws,
            Tok::lit("op="),
            Tok::cap("interaction"),
        ])],
        blocks: None,
    }
}

/// MySQL general query log: the request ID travels inside a SQL comment.
pub fn mysql_event_spec() -> ParserSpec {
    ParserSpec {
        name: "MySQL mScopeParser".into(),
        filters: vec![LineMatcher::Blank],
        context: vec![],
        records: vec![with_suffix(vec![
            Tok::wall("wall"),
            Tok::Ws,
            Tok::cap("thread_id"),
            Tok::Ws,
            Tok::lit("Query"),
            Tok::Ws,
            Tok::cap("sql"),
            Tok::lit("/*ID="),
            Tok::cap("request_id"),
            Tok::lit("*/ /*op="),
            Tok::cap("interaction"),
            Tok::lit("*/"),
        ])],
        blocks: None,
    }
}

/// Sanitizes a name for use as an mScopeDB table name.
pub fn table_name(raw: &str) -> String {
    raw.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// The parsing-declaration stage: maps one manifest entry to its parser,
/// destination table, and injected constants.
pub fn declaration_for(meta: &LogFileMeta) -> ParsingDeclaration {
    let (parser, table) = match meta.kind {
        MonitorKind::Event => {
            let spec = match meta.tier_kind {
                TierKind::Apache => apache_event_spec(),
                TierKind::Tomcat => tomcat_event_spec(),
                TierKind::Cjdbc => cjdbc_event_spec(),
                TierKind::Mysql => mysql_event_spec(),
            };
            (
                ParserKind::Staged(spec),
                format!("event_{}", meta.tier_kind.name()),
            )
        }
        MonitorKind::Resource => match meta.tool.as_str() {
            "collectl" => (
                ParserKind::Staged(collectl_csv_spec()),
                "collectl".to_string(),
            ),
            "collectl-brief" => (
                ParserKind::Staged(collectl_brief_spec()),
                "collectl_brief".to_string(),
            ),
            "sar" => (ParserKind::Staged(sar_text_spec()), "sar".to_string()),
            "sar-mem" => (ParserKind::Staged(sar_mem_spec()), "sar_mem".to_string()),
            "sar-net" => (ParserKind::Staged(sar_net_spec()), "sar_net".to_string()),
            "sar-xml" => (
                ParserKind::XmlDirect(sar_xml_mapping()),
                "sar_xml".to_string(),
            ),
            "iostat" => (ParserKind::Staged(iostat_spec()), "iostat".to_string()),
            other => (
                // Unknown tools fall back to a permissive key=value parser so
                // user-supplied monitors can join the pipeline.
                ParserKind::Staged(generic_kv_spec()),
                table_name(other),
            ),
        },
    };
    ParsingDeclaration {
        path: meta.path.clone(),
        monitor_id: meta.monitor_id.clone(),
        parser,
        table,
        constants: vec![
            ("node".to_string(), meta.node.to_string()),
            ("tier".to_string(), meta.node.tier.0.to_string()),
        ],
    }
}

/// Fallback parser for user-defined monitors: `time k=v k=v …` lines.
pub fn generic_kv_spec() -> ParserSpec {
    ParserSpec {
        name: "generic mScopeParser".into(),
        filters: vec![LineMatcher::Blank, LineMatcher::Prefix("#".into())],
        context: vec![],
        records: vec![pat(vec![
            Tok::wall("time"),
            Tok::Ws,
            Tok::cap("key"),
            Tok::lit("="),
            Tok::cap("value"),
        ])],
        blocks: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mscope_ntier::{NodeId, TierId};

    fn meta(kind: MonitorKind, tool: &str, tier_kind: TierKind) -> LogFileMeta {
        LogFileMeta {
            path: "logs/x".into(),
            node: NodeId {
                tier: TierId(0),
                replica: 0,
            },
            tier_kind,
            monitor_id: format!("{tool}-x"),
            tool: tool.into(),
            format: "text".into(),
            kind,
            period_ms: 50,
        }
    }

    #[test]
    fn apache_pattern_parses_rendered_line() {
        let line = "127.0.0.1 - - [00:00:00.020000] \"GET /rubbos/ViewStory?ID=000000000003 HTTP/1.1\" 200 1802 ua=00:00:00.010000 ud=00:00:00.020000 ds=00:00:00.011000 dr=00:00:00.019000";
        let spec = apache_event_spec();
        let caps = spec.records[0].match_line(line).expect("matches");
        let get = |k: &str| {
            caps.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("missing capture {k}"))
        };
        assert_eq!(get("interaction"), "ViewStory");
        assert_eq!(get("request_id"), "000000000003");
        assert_eq!(get("ua"), "00:00:00.010000");
        assert_eq!(get("dr"), "00:00:00.019000");
        assert_eq!(get("status"), "200");
    }

    #[test]
    fn mysql_pattern_extracts_id_from_sql_comment() {
        let line = "00:00:00.030000\t   42 Query\tSELECT * FROM stories /*ID=00000000000A*/ /*op=StoreComment*/ ua=00:00:00.025000 ud=00:00:00.030000 ds=- dr=-";
        let caps = mysql_event_spec().records[0]
            .match_line(line)
            .expect("matches");
        let get = |k: &str| {
            caps.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.as_str())
                .unwrap()
        };
        assert_eq!(get("request_id"), "00000000000A");
        assert_eq!(get("interaction"), "StoreComment");
        assert_eq!(get("ds"), "-");
    }

    #[test]
    fn tomcat_and_cjdbc_patterns_parse() {
        let t = "00:00:00.040000 INFO [ajp-exec] RequestLog /servlet/Search ID=0000000000FF ua=00:00:00.035000 ud=00:00:00.040000 ds=00:00:00.036000 dr=00:00:00.039000";
        assert!(tomcat_event_spec().records[0].match_line(t).is_some());
        let c = "00:00:00.040000 [rubbos-vdb] virtualdatabase request ID=0000000000FF op=Search ua=00:00:00.035000 ud=00:00:00.040000 ds=00:00:00.036000 dr=00:00:00.039000";
        assert!(cjdbc_event_spec().records[0].match_line(c).is_some());
    }

    #[test]
    fn declaration_routing() {
        let d = declaration_for(&meta(MonitorKind::Event, "apache", TierKind::Apache));
        assert_eq!(d.table, "event_apache");
        assert!(matches!(d.parser, ParserKind::Staged(_)));
        assert_eq!(d.constants[0], ("node".to_string(), "tier0-0".to_string()));

        let d = declaration_for(&meta(MonitorKind::Resource, "sar-xml", TierKind::Mysql));
        assert_eq!(d.table, "sar_xml");
        assert!(matches!(d.parser, ParserKind::XmlDirect(_)));

        let d = declaration_for(&meta(MonitorKind::Resource, "my.tool!", TierKind::Mysql));
        assert_eq!(d.table, "my_tool_");
    }

    #[test]
    fn table_name_sanitizes() {
        assert_eq!(table_name("SAR-xml 2"), "sar_xml_2");
        assert_eq!(table_name("collectl"), "collectl");
    }

    #[test]
    fn generic_kv_fallback_parses() {
        let spec = generic_kv_spec();
        let caps = spec.records[0]
            .match_line("00:00:01.000000 gc_pause=12.5")
            .unwrap();
        assert_eq!(caps[1], ("key".to_string(), "gc_pause".to_string()));
        assert_eq!(caps[2].1, "12.5");
    }
}
