//! Streaming ingestion — the transformer's half of the spine.
//!
//! The batch pipeline ([`DataTransformer::run`]) needs every log file
//! complete before it starts: schema inference is defined over *all*
//! entries, so the converter reads whole files. [`StreamingTransformer`]
//! is the incremental counterpart: it *tails* the declared files of a
//! growing [`LogStore`] (tracking a consumed-byte offset per declaration),
//! parses exactly the complete new lines / XML entries each
//! [`poll`](StreamingTransformer::poll), and appends typed rows to the
//! warehouse via [`Database::insert_batch`] as they arrive — the per-block
//! zone maps and the sorted-on-append flag are maintained on append, so
//! the warehouse is queryable mid-run.
//!
//! ## Convergence with batch
//!
//! At [`finish`](StreamingTransformer::finish) the warehouse holds, table
//! for table, **exactly** the schema and cell values the batch pipeline
//! infers from the finished files. The subtlety is that batch inference
//! sees all values before choosing column types, while streaming must
//! commit rows under the *running* type join and may later learn the join
//! was too narrow (a column of all-digit hex request IDs infers `Int`
//! until the first ID with a letter arrives). Three mechanisms close the
//! gap:
//!
//! * **Effective schema.** A column whose running join is still `Null`
//!   (no non-null value seen) is committed as `Text` — the same widening
//!   batch applies to all-null columns at schema build.
//! * **Raw retention.** Every committed cell remembers how to recover its
//!   raw text ([`RawCell`]): most cells render back to their raw form
//!   exactly (`Canonical`, no storage); the rest keep the raw string
//!   (`Kept`). A column that reaches `Text` — the top of the lattice, its
//!   type can never change again — drops its raws.
//! * **Migration by rebuild.** When a chunk widens a column's effective
//!   type (or introduces a new column), the committed prefix is rebuilt
//!   under the new schema — unchanged columns copied, changed columns
//!   re-parsed from their recovered raws — and swapped in with
//!   [`Database::replace_table`]. Batch parses each cell once with the
//!   final type; streaming re-parses the same raw text with the same
//!   final type, so the values are byte-identical.
//!
//! Row *order* is the one place streaming is allowed to differ: a table
//! fed by several files (one resource monitor per node) receives rows in
//! arrival-interleaved order rather than batch's file-concatenated order.
//! Tables fed by a single file — every event table — come out
//! byte-identical, rows included.
//!
//! XML-direct declarations are tailed by extracting each complete
//! `<entry…>…</entry>` span from the unconsumed suffix and parsing it as
//! a standalone fragment; [`finish`](StreamingTransformer::finish)
//! re-parses the whole document once to surface the malformed-XML errors
//! batch would have raised and to verify the span extraction saw every
//! entry.

use crate::declare::{ParserKind, ParserSpec, ParsingDeclaration, XmlMapping};
use crate::error::TransformError;
use crate::import::{normalize_cell, parse_cell};
use crate::pipeline::{DataTransformer, TransformReport};
use crate::xml::{self, XmlNode};
use mscope_db::{Column, ColumnType, Database, DbError, Schema, Table, Value};
use mscope_monitors::{LogFileMeta, LogStore, MonitorKind};
use mscope_sim::parallel_map;

/// One parsed entry: `(field, raw value)` pairs, constants first — the
/// streaming equivalent of batch's `<entry>` element.
type Fields = Vec<(String, String)>;

// ---------------------------------------------------------------------------
// Per-declaration incremental parser state
// ---------------------------------------------------------------------------

/// Incremental parse state for one declaration: how many bytes of the
/// declared file have been consumed, plus the staged-parser carry-over
/// (sticky context, open block, line counter).
#[derive(Debug, Clone)]
struct DeclState {
    consumed: usize,
    line_no: usize,
    ctx: Vec<(String, String)>,
    block: Option<(Fields, usize)>,
    entries: usize,
}

impl DeclState {
    fn new() -> DeclState {
        DeclState {
            consumed: 0,
            line_no: 0,
            ctx: Vec::new(),
            block: None,
            entries: 0,
        }
    }
}

fn unparsed(decl: &ParsingDeclaration, line_no: usize, line: &str) -> TransformError {
    TransformError::UnparsedLine {
        file: decl.path.clone(),
        line_no,
        line: line.to_string(),
    }
}

/// Builds one entry's field list exactly as batch `make_entry` does:
/// constants, then sticky context, then the captures.
fn entry_fields(decl: &ParsingDeclaration, ctx: &[(String, String)], fields: Fields) -> Fields {
    let mut e = Vec::with_capacity(decl.constants.len() + ctx.len() + fields.len());
    // perf: constants and context are shared across entries — each entry
    // owns one clone pair per inherited field, as in the batch parser.
    e.extend(decl.constants.iter().cloned());
    e.extend(ctx.iter().cloned());
    e.extend(fields);
    e
}

/// Consumes the unconsumed suffix of `content`, emitting entries for every
/// complete unit (line or XML entry span). With `at_end` the trailing
/// newline-less line is processed too (batch `str::lines` semantics).
fn advance(
    decl: &ParsingDeclaration,
    st: &mut DeclState,
    content: &str,
    at_end: bool,
) -> Result<Vec<Fields>, TransformError> {
    match &decl.parser {
        ParserKind::Staged(spec) => advance_staged(decl, spec, st, content, at_end),
        ParserKind::XmlDirect(map) => advance_xml(decl, map, st, content),
    }
}

fn advance_staged(
    decl: &ParsingDeclaration,
    spec: &ParserSpec,
    st: &mut DeclState,
    content: &str,
    at_end: bool,
) -> Result<Vec<Fields>, TransformError> {
    let mut out = Vec::new();
    let mut pos = st.consumed;
    while let Some(nl) = content[pos..].find('\n') {
        // A complete line: strip the newline and an optional \r, exactly
        // as `str::lines` does for the batch parser.
        let line = content[pos..pos + nl]
            .strip_suffix('\r')
            .unwrap_or(&content[pos..pos + nl]);
        pos += nl + 1;
        st.line_no += 1;
        staged_line(decl, spec, st, line, &mut out)?;
        st.consumed = pos;
    }
    if at_end && pos < content.len() {
        // The final newline-less line. `str::lines` keeps a lone trailing
        // \r here (it only strips \r before a \n), so no stripping.
        let line = &content[pos..];
        st.line_no += 1;
        staged_line(decl, spec, st, line, &mut out)?;
        st.consumed = content.len();
    }
    Ok(out)
}

/// One line through the staged engine — a faithful incremental transcription
/// of the batch `run_staged` loop body (filters → block mode → context →
/// records → unparsed).
fn staged_line(
    decl: &ParsingDeclaration,
    spec: &ParserSpec,
    st: &mut DeclState,
    line: &str,
    out: &mut Vec<Fields>,
) -> Result<(), TransformError> {
    if spec.filters.iter().any(|f| f.matches(line)) {
        return Ok(());
    }
    if let Some(bs) = &spec.blocks {
        if let Some(caps) = bs.marker.match_line(line) {
            // New block begins; an incomplete previous one is dropped only
            // at end-of-stream, mirroring a tool killed mid-record.
            st.block = Some((caps, 0));
            return Ok(());
        }
        if let Some((fields, idx)) = &mut st.block {
            let Some(slot) = bs.lines.get(*idx) else {
                return Err(unparsed(decl, st.line_no, line));
            };
            if let Some(pat) = slot {
                let caps = pat
                    .match_line(line)
                    .ok_or_else(|| unparsed(decl, st.line_no, line))?;
                fields.extend(caps);
            }
            *idx += 1;
            if *idx == bs.lines.len() {
                if let Some((fields, _)) = st.block.take() {
                    out.push(entry_fields(decl, &[], fields));
                }
            }
            return Ok(());
        }
    }
    for pat in &spec.context {
        if let Some(caps) = pat.match_line(line) {
            for (k, v) in caps {
                st.ctx.retain(|(ck, _)| *ck != k);
                st.ctx.push((k, v));
            }
            return Ok(());
        }
    }
    for pat in &spec.records {
        if let Some(caps) = pat.match_line(line) {
            out.push(entry_fields(decl, &st.ctx, caps));
            return Ok(());
        }
    }
    Err(unparsed(decl, st.line_no, line))
}

// ---------------------------------------------------------------------------
// Incremental XML entry-span extraction
// ---------------------------------------------------------------------------

enum Span {
    /// No entry element starts in the haystack.
    None,
    /// An entry element starts but is not yet complete — wait for more.
    Incomplete,
    /// A complete entry element occupies `[start, end)`.
    Complete(usize, usize),
}

/// Scans one tag starting at `b[at] == b'<'` to its closing `>` (quote
/// aware, so a `>` inside an attribute value does not end the tag).
/// Returns the index after `>` and whether the tag was self-closing, or
/// `None` when the buffer ends mid-tag.
fn scan_tag(b: &[u8], at: usize) -> Option<(usize, bool)> {
    let mut quote: Option<u8> = None;
    let mut last = b'<';
    let mut j = at;
    while j < b.len() {
        let c = b[j];
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                b'"' | b'\'' => quote = Some(c),
                b'>' => return Some((j + 1, last == b'/')),
                _ => {}
            },
        }
        if quote.is_none() && !c.is_ascii_whitespace() {
            last = c;
        }
        j += 1;
    }
    None
}

fn is_tag_delim(c: Option<&u8>) -> bool {
    matches!(c, Some(b' ' | b'\t' | b'\n' | b'\r' | b'>' | b'/'))
}

/// Finds the next complete `<name …>…</name>` (or self-closing
/// `<name …/>`) span in `hay`, tolerating prologue/epilogue text and
/// nested same-name elements.
fn find_entry_span(hay: &str, name: &str) -> Span {
    let b = hay.as_bytes();
    // perf: two small tag strings per scan call, not per byte.
    let open = format!("<{name}");
    let close = format!("</{name}>");
    // Locate a candidate start: `<name` followed by a tag delimiter.
    let mut i = 0;
    let start = loop {
        match hay[i..].find(&open) {
            None => return Span::None,
            Some(off) => {
                let s = i + off;
                let after = s + open.len();
                if after >= b.len() {
                    // Could still grow into `<name ` — wait for more bytes.
                    return Span::Incomplete;
                }
                if is_tag_delim(b.get(after)) {
                    break s;
                }
                i = s + 1;
            }
        }
    };
    // Walk tags until the candidate's subtree closes.
    let mut depth = 0usize;
    let mut j = start;
    while j < b.len() {
        if b[j] != b'<' {
            j += 1;
            continue;
        }
        if hay[j..].starts_with(&close) {
            if depth <= 1 {
                return Span::Complete(start, j + close.len());
            }
            depth -= 1;
            j += close.len();
            continue;
        }
        let opens_entry = hay[j..].starts_with(&open) && is_tag_delim(b.get(j + open.len()));
        let Some((tag_end, self_closing)) = scan_tag(b, j) else {
            return Span::Incomplete;
        };
        if opens_entry {
            if self_closing {
                if depth == 0 {
                    return Span::Complete(j, tag_end);
                }
            } else {
                depth += 1;
            }
        }
        j = tag_end;
    }
    Span::Incomplete
}

fn advance_xml(
    decl: &ParsingDeclaration,
    map: &XmlMapping,
    st: &mut DeclState,
    content: &str,
) -> Result<Vec<Fields>, TransformError> {
    let mut out = Vec::new();
    loop {
        match find_entry_span(&content[st.consumed..], &map.entry_element) {
            Span::None | Span::Incomplete => break,
            Span::Complete(start, end) => {
                let span = &content[st.consumed + start..st.consumed + end];
                let el = xml::parse(span).map_err(TransformError::Xml)?;
                out.push(xml_entry(decl, map, &el));
                st.consumed += end;
            }
        }
    }
    Ok(out)
}

/// Extracts one entry's fields from a parsed entry element — the batch
/// `run_xml` per-entry body (entry attributes, then first-leaf attributes).
fn xml_entry(decl: &ParsingDeclaration, map: &XmlMapping, el: &XmlNode) -> Fields {
    let mut fields: Fields = Vec::with_capacity(map.entry_attrs.len() + map.leaf_attrs.len());
    for (attr, field) in &map.entry_attrs {
        if let Some(v) = el.get_attr(attr) {
            // perf: extracted fields own their values — one pair per
            // matched attribute, as in the batch XML path.
            fields.push((field.clone(), v.to_string()));
        }
    }
    for (elem, attr, field) in &map.leaf_attrs {
        if let Some(leaf) = el.find_all(elem).first() {
            if let Some(v) = leaf.get_attr(attr) {
                // perf: extracted fields own their values — one pair per
                // matched attribute, as in the batch XML path.
                fields.push((field.clone(), v.to_string()));
            }
        }
    }
    entry_fields(decl, &[], fields)
}

// ---------------------------------------------------------------------------
// Table sinks: running schema inference + migration by rebuild
// ---------------------------------------------------------------------------

/// How a committed cell's raw text is recoverable for a later re-parse.
#[derive(Debug, Clone, PartialEq)]
enum RawCell {
    /// The field was absent from its entry — `Null` under any type.
    Missing,
    /// The raw text equals the committed value's [`Value::render`] output
    /// exactly; nothing is stored, the render recovers it on demand.
    Canonical,
    /// The raw text diverges from the canonical rendering (padding,
    /// trailing zeros, alternate bool casing) and is kept verbatim.
    Kept(Box<str>),
}

/// Running inference for one column of a sink.
#[derive(Debug)]
struct SinkCol {
    name: String,
    /// Lattice join of every observed (normalized) value type; `Null`
    /// while no non-null value has been seen.
    join: ColumnType,
    /// One [`RawCell`] per committed row; `None` once the join reached
    /// `Text` (top of the lattice — the type can never change again).
    raws: Option<Vec<RawCell>>,
}

/// A column's *effective* warehouse type: the running join, with the
/// all-null → `Text` widening batch applies at schema build.
fn effective(join: ColumnType) -> ColumnType {
    if join == ColumnType::Null {
        ColumnType::Text
    } else {
        join
    }
}

/// Accumulates one destination table's entries, maintains the running
/// schema, and keeps the warehouse table converged with it.
#[derive(Debug)]
struct TableSink {
    table: String,
    /// Declarations feeding this table (the report's `files` share).
    files: usize,
    created: bool,
    committed: usize,
    cols: Vec<SinkCol>,
    buffered: Vec<Fields>,
}

impl TableSink {
    fn new(table: &str) -> TableSink {
        TableSink {
            table: table.to_string(),
            files: 0,
            created: false,
            committed: 0,
            cols: Vec::new(),
            buffered: Vec::new(),
        }
    }

    /// Folds one entry into the running schema and buffers it for the next
    /// flush. Mirrors batch pass 1: duplicate fields rejected, column set
    /// unioned in first-appearance order, types joined through the same
    /// `normalize_cell` / `Value::infer` rules.
    fn add_entry(&mut self, entry: Fields) -> Result<(), TransformError> {
        for (i, (k, _)) in entry.iter().enumerate() {
            if entry[..i].iter().any(|(p, _)| p == k) {
                return Err(TransformError::SchemaInference(format!(
                    "duplicate field `{k}` within one entry for `{}`",
                    self.table
                )));
            }
        }
        for (k, v) in &entry {
            let vt = match normalize_cell(v) {
                None => ColumnType::Null,
                Some(t) => Value::infer(t).column_type(),
            };
            match self.cols.iter_mut().find(|c| c.name == *k) {
                Some(c) => c.join = c.join.unify(vt),
                // perf: one name clone + one Missing backfill per *newly
                // discovered column* (a handful per table, ever), not per
                // entry — the steady state takes the update arm above.
                None => self.cols.push(SinkCol {
                    name: k.clone(),
                    join: vt,
                    // perf: a column first seen now was Missing in every
                    // already-committed row — one backfill per new column.
                    raws: Some(vec![RawCell::Missing; self.committed]),
                }),
            }
        }
        self.buffered.push(entry);
        Ok(())
    }

    fn effective_schema(&self) -> Result<Schema, TransformError> {
        Schema::new(
            self.cols
                .iter()
                .map(|c| Column::new(c.name.clone(), effective(c.join)))
                .collect(),
        )
        .map_err(|e| TransformError::SchemaInference(e.to_string()))
    }

    /// Commits the buffered entries: migrates the warehouse table if the
    /// effective schema moved, then materializes and batch-appends the new
    /// rows.
    fn flush(&mut self, db: &mut Database) -> Result<(), TransformError> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        let schema = self.effective_schema()?;
        if !self.created {
            db.ensure_table(&self.table, schema.clone())
                .map_err(TransformError::Db)?;
            self.created = true;
        } else if db
            .require(&self.table)
            .map_err(TransformError::Db)?
            .schema()
            != &schema
        {
            self.migrate(db, &schema)?;
        }
        // perf: one rows vector per flush, sized to the buffered chunk.
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(self.buffered.len());
        for entry in &self.buffered {
            let mut row = Vec::with_capacity(self.cols.len());
            let mut rawcells = Vec::with_capacity(self.cols.len());
            for col in &self.cols {
                match entry.iter().find(|(k, _)| *k == col.name) {
                    None => {
                        row.push(Value::Null);
                        rawcells.push(RawCell::Missing);
                    }
                    Some((_, raw)) => {
                        let v = parse_cell(&self.table, &col.name, effective(col.join), raw)?;
                        let rc = if col.raws.is_some() {
                            if *raw == v.render() {
                                RawCell::Canonical
                            } else {
                                // perf: raw retained only when it diverges
                                // from the canonical rendering — rare.
                                RawCell::Kept(raw.as_str().into())
                            }
                        } else {
                            RawCell::Missing // unused: raws already dropped
                        };
                        row.push(v);
                        rawcells.push(rc);
                    }
                }
            }
            for (col, rc) in self.cols.iter_mut().zip(rawcells) {
                if let Some(raws) = &mut col.raws {
                    raws.push(rc);
                }
            }
            rows.push(row);
        }
        let n = rows.len();
        db.insert_batch(&self.table, rows)
            .map_err(TransformError::Db)?;
        self.committed += n;
        self.buffered.clear();
        // Text is the top of the lattice: those columns can never change
        // type again, so their raws are dead weight.
        for col in &mut self.cols {
            if col.join == ColumnType::Text {
                col.raws = None;
            }
        }
        Ok(())
    }

    /// Rebuilds the committed prefix under a new effective schema and swaps
    /// it in. Unchanged columns are copied; columns whose effective type
    /// moved are re-parsed from their recovered raw text — producing the
    /// cells batch would have produced parsing the same raws with the
    /// final type in the first place.
    fn migrate(&mut self, db: &mut Database, new_schema: &Schema) -> Result<(), TransformError> {
        let old = db.require(&self.table).map_err(TransformError::Db)?;
        if old.row_count() != self.committed {
            // Rows we did not ingest (a pre-existing table) cannot be
            // migrated — the same situation batch reports as a schema
            // mismatch between the inferred and the existing schema.
            return Err(TransformError::Db(DbError::SchemaMismatch {
                table: self.table.clone(),
                existing: old.schema().to_string(),
                incoming: new_schema.to_string(),
            }));
        }
        let mut cols_data: Vec<Vec<Value>> = Vec::with_capacity(self.cols.len());
        for col in &mut self.cols {
            let new_ty = effective(col.join);
            let old_ci = old.schema().index_of(&col.name);
            let unchanged = old_ci.is_some_and(|ci| old.schema().columns()[ci].ty == new_ty);
            match old_ci {
                Some(_) if unchanged => {
                    let vals = old.column(&col.name).map(<[Value]>::to_vec);
                    let Some(vals) = vals else {
                        return Err(TransformError::SchemaInference(format!(
                            "migration of `{}` lost column `{}`",
                            self.table, col.name
                        )));
                    };
                    cols_data.push(vals);
                }
                Some(_) => {
                    // Re-parse every committed cell from its recovered raw.
                    let (Some(old_vals), Some(raws)) = (old.column(&col.name), col.raws.as_ref())
                    else {
                        // A column below the lattice top always holds raws,
                        // and the index came from this very schema.
                        return Err(TransformError::SchemaInference(format!(
                            "migration of `{}` lost raws for column `{}`",
                            self.table, col.name
                        )));
                    };
                    let mut vals = Vec::with_capacity(self.committed);
                    let mut nraws = Vec::with_capacity(self.committed);
                    for (r, rc) in raws.iter().enumerate() {
                        match rc {
                            RawCell::Missing => {
                                vals.push(Value::Null);
                                nraws.push(RawCell::Missing);
                            }
                            RawCell::Canonical | RawCell::Kept(_) => {
                                let recovered;
                                let raw: &str = match rc {
                                    RawCell::Kept(s) => s,
                                    _ => {
                                        recovered = old_vals[r].render();
                                        &recovered
                                    }
                                };
                                let v = parse_cell(&self.table, &col.name, new_ty, raw)?;
                                nraws.push(if raw == v.render() {
                                    RawCell::Canonical
                                } else {
                                    RawCell::Kept(raw.into())
                                });
                                vals.push(v);
                            }
                        }
                    }
                    col.raws = Some(nraws);
                    cols_data.push(vals);
                }
                None => {
                    // perf: one Null backfill per brand-new column, during a
                    // migration that runs at most a few times per table.
                    // Brand-new column: every committed row lacked it.
                    cols_data.push(vec![Value::Null; self.committed]);
                }
            }
        }
        let mut rebuilt = Table::new(self.table.clone(), new_schema.clone());
        // perf: migrations happen at most a few times per table, on the
        // committed prefix only — the steady state never pays this.
        let rows: Vec<Vec<Value>> = (0..self.committed)
            .map(|r| cols_data.iter().map(|c| c[r].clone()).collect())
            .collect();
        rebuilt.push_batch(rows).map_err(TransformError::Db)?;
        db.replace_table(rebuilt).map_err(TransformError::Db)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The streaming transformer
// ---------------------------------------------------------------------------

/// The incremental counterpart of [`DataTransformer::run`]: construct it
/// once, call [`poll`](StreamingTransformer::poll) whenever the log store
/// has grown, and [`finish`](StreamingTransformer::finish) when the run
/// ends. See the module docs for the convergence guarantees.
#[derive(Debug)]
pub struct StreamingTransformer {
    declarations: Vec<ParsingDeclaration>,
    manifest: Vec<LogFileMeta>,
    states: Vec<DeclState>,
    sink_of: Vec<usize>,
    sinks: Vec<TableSink>,
}

impl StreamingTransformer {
    /// Builds a streaming ingester from a transformer's declaration set,
    /// validating it up front exactly as [`DataTransformer::run`] does.
    ///
    /// # Errors
    ///
    /// [`TransformError::BadDeclaration`] for the first deny-level issue.
    pub fn new(transformer: &DataTransformer) -> Result<StreamingTransformer, TransformError> {
        transformer.validate()?;
        Ok(Self::from_parts(
            transformer.declarations().to_vec(),
            transformer.manifest_entries().to_vec(),
        ))
    }

    pub(crate) fn from_parts(
        declarations: Vec<ParsingDeclaration>,
        manifest: Vec<LogFileMeta>,
    ) -> StreamingTransformer {
        // Sinks in sorted table order — the order batch groups by table
        // (BTreeMap) and therefore the order the report lists.
        let mut tables: Vec<&str> = declarations.iter().map(|d| d.table.as_str()).collect();
        tables.sort_unstable();
        tables.dedup();
        let mut sinks: Vec<TableSink> = tables.iter().map(|t| TableSink::new(t)).collect();
        let sink_of: Vec<usize> = declarations
            .iter()
            .map(|d| {
                // The set was just built from these same declarations, so
                // the lookup cannot miss.
                tables.binary_search(&d.table.as_str()).unwrap_or(0)
            })
            .collect();
        for &si in &sink_of {
            sinks[si].files += 1;
        }
        let states = declarations.iter().map(|_| DeclState::new()).collect();
        StreamingTransformer {
            declarations,
            manifest,
            states,
            sink_of,
            sinks,
        }
    }

    /// Entries ingested so far across all tables.
    pub fn entries_seen(&self) -> usize {
        self.states.iter().map(|s| s.entries).sum()
    }

    /// Parses every declaration's unconsumed suffix. Results (and the
    /// advanced states) come back in declaration order regardless of
    /// worker count, which is what makes the parallel path byte-identical
    /// to the serial one.
    fn parse_new(
        &mut self,
        store: &LogStore,
        workers: usize,
        at_end: bool,
    ) -> Result<Vec<Vec<Fields>>, TransformError> {
        let decls = &self.declarations;
        let states = &self.states;
        let results: Vec<(DeclState, Result<Vec<Fields>, TransformError>)> =
            parallel_map(decls.len(), workers.max(1), |di| {
                let decl = &decls[di];
                let mut st = states[di].clone();
                let r = match store.read(&decl.path) {
                    // A file that does not exist yet simply has no data;
                    // it is only an error if still absent at the end.
                    None if !at_end => Ok(Vec::new()),
                    None => Err(TransformError::MissingFile(decl.path.clone())),
                    Some(content) => advance(decl, &mut st, content, at_end),
                };
                if let Ok(entries) = &r {
                    st.entries += entries.len();
                }
                (st, r)
            });
        let mut out = Vec::with_capacity(results.len());
        let mut first_err = None;
        for (di, (st, r)) in results.into_iter().enumerate() {
            self.states[di] = st;
            match r {
                Ok(entries) => out.push(entries),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    out.push(Vec::new());
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    fn apply(&mut self, parsed: Vec<Vec<Fields>>, db: &mut Database) -> Result<(), TransformError> {
        for (di, entries) in parsed.into_iter().enumerate() {
            let sink = &mut self.sinks[self.sink_of[di]];
            for entry in entries {
                sink.add_entry(entry)?;
            }
        }
        for sink in &mut self.sinks {
            sink.flush(db)?;
        }
        Ok(())
    }

    /// Ingests whatever new data the store holds, serially.
    ///
    /// # Errors
    ///
    /// Parse errors ([`TransformError::UnparsedLine`], XML errors) and
    /// warehouse errors; a declared file absent from the store is *not* an
    /// error here (the monitor may not have written yet), only at
    /// [`finish`](StreamingTransformer::finish).
    pub fn poll(&mut self, store: &LogStore, db: &mut Database) -> Result<(), TransformError> {
        self.poll_with(store, db, 1)
    }

    /// [`poll`](StreamingTransformer::poll) with the per-declaration parse
    /// stage fanned out over `workers` threads. The warehouse contents are
    /// byte-identical for any worker count: parsing is independent per
    /// declaration and results are applied in declaration order.
    ///
    /// # Errors
    ///
    /// As [`poll`](StreamingTransformer::poll).
    pub fn poll_with(
        &mut self,
        store: &LogStore,
        db: &mut Database,
        workers: usize,
    ) -> Result<(), TransformError> {
        let parsed = self.parse_new(store, workers, false)?;
        self.apply(parsed, db)
    }

    /// Drains the final partial lines, validates the XML-direct documents,
    /// creates tables for zero-entry declarations, registers the monitor /
    /// log-file metadata (manifest order, as batch), and returns the same
    /// [`TransformReport`] the batch pipeline computes. Incomplete trailing
    /// blocks are dropped, mirroring batch end-of-file behaviour.
    ///
    /// # Errors
    ///
    /// [`TransformError::MissingFile`] for declared files absent from the
    /// store; parse/XML errors from the final drain; warehouse errors.
    pub fn finish(
        mut self,
        store: &LogStore,
        db: &mut Database,
    ) -> Result<TransformReport, TransformError> {
        let parsed = self.parse_new(store, 1, true)?;
        self.apply(parsed, db)?;

        // The span extractor only ever sees complete entries; re-parse each
        // XML document once to surface malformed-XML errors exactly as
        // batch would, and to prove the extraction missed nothing.
        for (di, decl) in self.declarations.iter().enumerate() {
            if let ParserKind::XmlDirect(map) = &decl.parser {
                let content = store
                    .read(&decl.path)
                    .ok_or_else(|| TransformError::MissingFile(decl.path.clone()))?;
                let doc = xml::parse(content).map_err(TransformError::Xml)?;
                let in_doc = doc.find_all(&map.entry_element).len();
                if in_doc != self.states[di].entries {
                    return Err(TransformError::SchemaInference(format!(
                        "streaming extraction of `{}` saw {} entries but the document holds {}",
                        decl.path, self.states[di].entries, in_doc
                    )));
                }
            }
        }

        // Zero-entry tables still materialize (batch converts an empty
        // document set into an empty schema and ensures the table).
        for sink in &mut self.sinks {
            if !sink.created {
                let schema = sink.effective_schema()?;
                db.ensure_table(&sink.table, schema)
                    .map_err(TransformError::Db)?;
                sink.created = true;
            }
        }

        // Metadata registration, manifest order — identical to batch.
        for m in &self.manifest {
            let kind = match m.kind {
                MonitorKind::Event => "event",
                MonitorKind::Resource => "resource",
            };
            // perf: one rendered node name per manifest entry, shared by
            // both registrations below — same shape as the batch loop.
            let node = m.node.to_string();
            db.register_monitor(&m.monitor_id, &node, &m.tool, kind, m.period_ms as i64)
                .map_err(TransformError::Db)?;
            let bytes = store
                .size(&m.path)
                .ok_or_else(|| TransformError::MissingFile(m.path.clone()))?
                as i64;
            db.register_log_file(&m.path, &node, &m.monitor_id, &m.format, bytes)
                .map_err(TransformError::Db)?;
        }

        let mut report = TransformReport::default();
        for sink in &self.sinks {
            report.files += sink.files;
            report.entries += sink.committed;
            // perf: one owned table name per loaded table, once at finish.
            report.tables.push((sink.table.clone(), sink.committed));
        }
        Ok(report)
    }
}

impl DataTransformer {
    /// Deploys this transformer in streaming mode; the returned
    /// [`StreamingTransformer`] tails the log store incrementally and
    /// finishes into the same warehouse contents
    /// [`DataTransformer::run`] produces (see the `stream` module docs
    /// for the row-order caveat on multi-file tables).
    ///
    /// # Errors
    ///
    /// [`TransformError::BadDeclaration`] for the first deny-level issue.
    pub fn stream(&self) -> Result<StreamingTransformer, TransformError> {
        StreamingTransformer::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declare::ParserSpec;
    use crate::pattern::{Pattern, Tok};
    use mscope_db::ValueKey;
    use mscope_monitors::MonitorSuite;
    use mscope_ntier::{Simulator, SystemConfig};
    use mscope_sim::SimDuration;
    use std::collections::BTreeMap;

    fn artifacts(users: u32, secs: u64) -> mscope_monitors::MonitoringArtifacts {
        let mut cfg = SystemConfig::rubbos_baseline(users);
        cfg.duration = SimDuration::from_secs(secs);
        cfg.warmup = SimDuration::from_secs(1);
        cfg.workload.ramp_up = SimDuration::from_secs(1);
        let out = Simulator::new(cfg).unwrap().run();
        MonitorSuite::standard(&out.config).render(&out)
    }

    /// Feeds `full` into a fresh store `chunk` bytes per file per round,
    /// polling after every round, then finishes.
    fn run_streaming(
        art: &mscope_monitors::MonitoringArtifacts,
        chunk: usize,
        workers: usize,
    ) -> (Database, TransformReport) {
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut st = tr.stream().unwrap();
        let mut db = Database::new();
        let paths: Vec<String> = art.store.paths().iter().map(|p| p.to_string()).collect();
        let mut partial = LogStore::new();
        let mut offsets: BTreeMap<&str, usize> = BTreeMap::new();
        loop {
            let mut grew = false;
            for p in &paths {
                let full = art.store.read(p).unwrap();
                let off = offsets.entry(p.as_str()).or_insert(0);
                if *off >= full.len() {
                    continue;
                }
                let mut end = (*off + chunk).min(full.len());
                while !full.is_char_boundary(end) {
                    end += 1;
                }
                partial.append(p, &full[*off..end]);
                *off = end;
                grew = true;
            }
            if !grew {
                break;
            }
            st.poll_with(&partial, &mut db, workers).unwrap();
        }
        assert_eq!(&partial, &art.store);
        let report = st.finish(&partial, &mut db).unwrap();
        (db, report)
    }

    /// Tables fed by more than one declaration may legitimately interleave
    /// rows; canonicalize those to a sorted multiset for comparison.
    fn sorted_rows(t: &Table) -> Vec<Vec<ValueKey>> {
        let mut rows: Vec<Vec<ValueKey>> = t
            .iter_rows()
            .map(|r| r.iter().map(Value::key).collect())
            .collect();
        rows.sort();
        rows
    }

    fn assert_converged(streamed: &Database, batch: &Database, multi: &[&str], tag: &str) {
        assert_eq!(streamed.table_names(), batch.table_names(), "{tag}");
        for name in batch.table_names() {
            let b = batch.require(name).unwrap();
            let s = streamed.require(name).unwrap();
            assert_eq!(s.schema(), b.schema(), "{tag}: schema of {name}");
            if multi.contains(&name) {
                assert_eq!(sorted_rows(s), sorted_rows(b), "{tag}: rows of {name}");
            } else {
                assert_eq!(s, b, "{tag}: table {name}");
            }
        }
    }

    fn multi_file_tables(tr: &DataTransformer) -> Vec<String> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for d in tr.declarations() {
            *counts.entry(d.table.as_str()).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .filter(|&(_, n)| n > 1)
            .map(|(t, _)| t.to_string())
            .collect()
    }

    #[test]
    fn streaming_converges_with_batch_across_chunk_sizes() {
        let art = artifacts(40, 4);
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut batch_db = Database::new();
        let batch_report = tr.run(&art.store, &mut batch_db).unwrap();
        let multi: Vec<String> = multi_file_tables(&tr);
        let multi_refs: Vec<&str> = multi.iter().map(String::as_str).collect();
        for chunk in [64usize, 4096] {
            let (db, report) = run_streaming(&art, chunk, 1);
            assert_eq!(report, batch_report, "chunk={chunk}");
            assert_converged(&db, &batch_db, &multi_refs, &format!("chunk={chunk}"));
        }
    }

    #[test]
    fn streaming_converges_one_byte_at_a_time() {
        // Byte-granular chunks on a small run: every line and XML span is
        // split mid-token at some point.
        let art = artifacts(10, 2);
        let tr = DataTransformer::from_manifest(&art.manifest);
        let mut batch_db = Database::new();
        let batch_report = tr.run(&art.store, &mut batch_db).unwrap();
        let multi: Vec<String> = multi_file_tables(&tr);
        let multi_refs: Vec<&str> = multi.iter().map(String::as_str).collect();
        let (db, report) = run_streaming(&art, 1, 1);
        assert_eq!(report, batch_report);
        assert_converged(&db, &batch_db, &multi_refs, "chunk=1");
    }

    #[test]
    fn worker_fanout_is_byte_identical() {
        let art = artifacts(40, 4);
        let (db1, r1) = run_streaming(&art, 1024, 1);
        let (db4, r4) = run_streaming(&art, 1024, 4);
        assert_eq!(r1, r4);
        assert_eq!(db1.to_json().unwrap(), db4.to_json().unwrap());
    }

    // --- focused unit tests around schema migration -----------------------

    fn kv_decl(path: &str, table: &str) -> ParsingDeclaration {
        ParsingDeclaration {
            path: path.into(),
            monitor_id: "m1".into(),
            parser: ParserKind::Staged(ParserSpec {
                name: "kv".into(),
                filters: vec![crate::declare::LineMatcher::Blank],
                context: vec![],
                records: vec![Pattern::new(vec![
                    Tok::cap("k"),
                    Tok::lit("="),
                    Tok::cap("v"),
                ])],
                blocks: None,
            }),
            table: table.into(),
            constants: vec![("node".into(), "n0".into())],
        }
    }

    /// Batch oracle for a single declaration: execute + convert + load.
    fn batch_oracle(decl: &ParsingDeclaration, content: &str) -> Database {
        let doc = decl.execute(content).unwrap();
        let conv = crate::convert::convert_xml(std::slice::from_ref(&doc)).unwrap();
        let mut db = Database::new();
        crate::import::import_rows(&mut db, &decl.table, &conv.schema, conv.rows).unwrap();
        db
    }

    /// Streams `content` into the declaration byte by byte and returns the
    /// resulting warehouse (metadata registration skipped on both sides).
    fn stream_oracle(decl: &ParsingDeclaration, content: &str) -> Database {
        let mut st = StreamingTransformer::from_parts(vec![decl.clone()], Vec::new());
        let mut db = Database::new();
        let mut partial = LogStore::new();
        for i in 0..content.len() {
            if content.is_char_boundary(i) && content.is_char_boundary(i + 1) {
                partial.append(&decl.path, &content[i..i + 1]);
                st.poll(&partial, &mut db).unwrap();
            } else if content.is_char_boundary(i) {
                let mut end = i + 1;
                while !content.is_char_boundary(end) {
                    end += 1;
                }
                partial.append(&decl.path, &content[i..end]);
                st.poll(&partial, &mut db).unwrap();
            }
        }
        st.finish(&partial, &mut db).unwrap();
        db
    }

    #[test]
    fn mid_stream_widenings_converge() {
        // Every lattice transition the running join can take, in one file:
        //  * `a`: Int → Float (late decimal)
        //  * `b`: Int → Text (hex id that starts all-digits)
        //  * `c`: all-null until a late timestamp arrives
        //  * `d`: null forever → Text at finish, dashes kept verbatim
        let decl = ParsingDeclaration {
            path: "wid.log".into(),
            monitor_id: "m1".into(),
            parser: ParserKind::Staged(ParserSpec {
                name: "row".into(),
                filters: vec![crate::declare::LineMatcher::Blank],
                context: vec![],
                records: vec![Pattern::new(vec![
                    Tok::lit("r "),
                    Tok::cap("a"),
                    Tok::Ws,
                    Tok::cap("b"),
                    Tok::Ws,
                    Tok::cap("c"),
                    Tok::Ws,
                    Tok::cap("d"),
                ])],
                blocks: None,
            }),
            table: "wid".into(),
            constants: vec![],
        };
        let content = "\
r 5 123456 - -\n\
r 6 999999 - -\n\
r 2.5 12ab34 00:00:02.500000 -\n\
r 3 777 00:00:03.000000 -\n";
        let batch = batch_oracle(&decl, content);
        let streamed = stream_oracle(&decl, content);
        let b = batch.require("wid").unwrap();
        let s = streamed.require("wid").unwrap();
        assert_eq!(s, b);
        // And the final types are what batch infers.
        assert_eq!(b.schema().columns()[0].ty, ColumnType::Float, "a");
        assert_eq!(b.schema().columns()[1].ty, ColumnType::Text, "b");
        assert_eq!(b.schema().columns()[2].ty, ColumnType::Timestamp, "c");
        assert_eq!(b.schema().columns()[3].ty, ColumnType::Text, "d");
        // Int → Text kept the original digits verbatim…
        assert_eq!(s.cell(0, "b"), Some(&Value::Text("123456".into())));
        // …and the all-null column widened to Text with dashes verbatim.
        assert_eq!(s.cell(0, "d"), Some(&Value::Text("-".into())));
    }

    #[test]
    fn late_new_column_null_backfills() {
        // Two record patterns: `p x y` carries a `y` field, `p x` does
        // not — so `y` first appears mid-stream, after rows without it
        // were already committed.
        let decl = ParsingDeclaration {
            path: "late.log".into(),
            monitor_id: "m1".into(),
            parser: ParserKind::Staged(ParserSpec {
                name: "late".into(),
                filters: vec![],
                context: vec![],
                records: vec![
                    Pattern::new(vec![Tok::lit("p "), Tok::cap("x"), Tok::Ws, Tok::cap("y")]),
                    Pattern::new(vec![Tok::lit("p "), Tok::cap("x")]),
                ],
                blocks: None,
            }),
            table: "late".into(),
            constants: vec![],
        };
        let content = "p 1\np 2\np 3 9\np 4 10\n";
        let batch = batch_oracle(&decl, content);
        let streamed = stream_oracle(&decl, content);
        assert_eq!(
            streamed.require("late").unwrap(),
            batch.require("late").unwrap()
        );
        let t = streamed.require("late").unwrap();
        assert_eq!(t.cell(0, "y"), Some(&Value::Null));
        assert_eq!(t.cell(2, "y"), Some(&Value::Int(9)));
    }

    #[test]
    fn unparsed_line_number_matches_batch() {
        let decl = kv_decl("bad.log", "kv");
        let content = "k=1\n\nk=2\nNOT A KV LINE\n";
        // Batch error:
        let be = decl.execute(content).unwrap_err();
        // Streaming error (fed in awkward 3-byte chunks):
        let mut st = StreamingTransformer::from_parts(vec![decl.clone()], Vec::new());
        let mut db = Database::new();
        let mut partial = LogStore::new();
        let mut se = None;
        let mut i = 0;
        while i < content.len() {
            let end = (i + 3).min(content.len());
            partial.append(&decl.path, &content[i..end]);
            i = end;
            if let Err(e) = st.poll(&partial, &mut db) {
                se = Some(e);
                break;
            }
        }
        match (be, se.expect("streaming surfaced the bad line")) {
            (
                TransformError::UnparsedLine {
                    file: bf,
                    line_no: bn,
                    line: bl,
                },
                TransformError::UnparsedLine {
                    file: sf,
                    line_no: sn,
                    line: sl,
                },
            ) => {
                assert_eq!((bf, bn, bl), (sf, sn, sl));
            }
            other => panic!("unexpected error pair {other:?}"),
        }
    }

    #[test]
    fn incomplete_trailing_block_dropped_at_finish_only() {
        let decl = ParsingDeclaration {
            path: "blk.log".into(),
            monitor_id: "m1".into(),
            parser: ParserKind::Staged(ParserSpec {
                name: "blocks".into(),
                filters: vec![],
                context: vec![],
                records: vec![],
                blocks: Some(crate::declare::BlockSpec {
                    marker: Pattern::new(vec![Tok::lit("M")]),
                    lines: vec![Some(Pattern::new(vec![Tok::lit("x="), Tok::cap("x")]))],
                }),
            }),
            table: "blk".into(),
            constants: vec![],
        };
        let mut st = StreamingTransformer::from_parts(vec![decl.clone()], Vec::new());
        let mut db = Database::new();
        let mut partial = LogStore::new();
        // First poll ends mid-block; the block must survive to the next
        // poll (batch on the full file would complete it).
        partial.append("blk.log", "M\n");
        st.poll(&partial, &mut db).unwrap();
        partial.append("blk.log", "x=1\nM\n");
        st.poll(&partial, &mut db).unwrap();
        let report = st.finish(&partial, &mut db).unwrap();
        assert_eq!(report.entries, 1, "the trailing markered block is dropped");
        assert_eq!(
            db.require("blk").unwrap().cell(0, "x"),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn malformed_xml_surfaces_at_finish() {
        let decl = ParsingDeclaration {
            path: "x.xml".into(),
            monitor_id: "m1".into(),
            parser: ParserKind::XmlDirect(XmlMapping {
                entry_element: "ts".into(),
                entry_attrs: vec![("t".into(), "t".into())],
                leaf_attrs: vec![],
            }),
            table: "x".into(),
            constants: vec![],
        };
        let mut st = StreamingTransformer::from_parts(vec![decl], Vec::new());
        let mut db = Database::new();
        let mut partial = LogStore::new();
        partial.append("x.xml", "<root><ts t=\"1\"/><broken");
        st.poll(&partial, &mut db).unwrap();
        assert!(matches!(
            st.finish(&partial, &mut db),
            Err(TransformError::Xml(_))
        ));
    }

    #[test]
    fn missing_file_is_fine_until_finish() {
        let decl = kv_decl("late.log", "kv");
        let mut st = StreamingTransformer::from_parts(vec![decl.clone()], Vec::new());
        let mut db = Database::new();
        let empty = LogStore::new();
        st.poll(&empty, &mut db).unwrap();
        let st2 = StreamingTransformer::from_parts(vec![decl], Vec::new());
        assert!(matches!(
            st2.finish(&empty, &mut db),
            Err(TransformError::MissingFile(_))
        ));
        let _ = st;
    }

    #[test]
    fn zero_entry_declaration_still_creates_table() {
        let decl = kv_decl("empty.log", "kv");
        let mut store = LogStore::new();
        store.append("empty.log", "");
        let st = StreamingTransformer::from_parts(vec![decl], Vec::new());
        let mut db = Database::new();
        let report = st.finish(&store, &mut db).unwrap();
        assert_eq!(report.tables, vec![("kv".to_string(), 0)]);
        assert!(db.table("kv").is_some());
        assert_eq!(db.require("kv").unwrap().row_count(), 0);
    }
}
