//! The token-pattern engine behind parsing instructions.
//!
//! The paper's parsers are governed by declarative instructions: "these
//! parsers support adding semantics to files using either the sequence of
//! lines in a file or specific string tokens (expressed as regular
//! expressions)" (§III-B1). This module is the string-token half: a small
//! scanf-style matcher — literals, whitespace runs, named captures — that
//! is expressive enough for every monitor format in the suite while staying
//! fully inspectable (a pattern *is* the instruction, data not code).

use crate::error::TransformError;
use std::fmt;

/// One token of a line pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Exact literal text.
    Lit(String),
    /// One or more whitespace characters.
    Ws,
    /// Named capture: consumes lazily until the next token matches (or to
    /// end of line if last).
    Cap(String),
    /// Named capture that must look like a wall-clock timestamp
    /// (`HH:MM:SS[.ffffff]`).
    Wall(String),
}
mscope_serdes::json_enum!(Tok { Lit(a), Ws, Cap(a), Wall(a) });

/// Convenience constructors.
impl Tok {
    /// Literal token.
    pub fn lit(s: &str) -> Tok {
        Tok::Lit(s.to_string())
    }
    /// Capture token.
    pub fn cap(name: &str) -> Tok {
        Tok::Cap(name.to_string())
    }
    /// Wall-clock capture token.
    pub fn wall(name: &str) -> Tok {
        Tok::Wall(name.to_string())
    }
}

/// A line pattern: a sequence of tokens that must match the entire line.
///
/// # Examples
///
/// ```
/// use mscope_transform::{Pattern, Tok};
///
/// let p = Pattern::new(vec![
///     Tok::wall("time"), Tok::Ws, Tok::lit("all"), Tok::Ws, Tok::cap("user"),
/// ]);
/// let caps = p.match_line("00:00:01.500000     all      12.34").unwrap();
/// assert_eq!(caps[0], ("time".to_string(), "00:00:01.500000".to_string()));
/// assert_eq!(caps[1].1, "12.34");
/// assert!(p.match_line("garbage").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    toks: Vec<Tok>,
}
mscope_serdes::json_struct!(Pattern { toks });

impl Pattern {
    /// Builds a pattern from tokens.
    pub fn new(toks: Vec<Tok>) -> Pattern {
        Pattern { toks }
    }

    /// The tokens.
    pub fn tokens(&self) -> &[Tok] {
        &self.toks
    }

    /// Names of the captures, in order.
    pub fn capture_names(&self) -> Vec<&str> {
        self.toks
            .iter()
            .filter_map(|t| match t {
                Tok::Cap(n) | Tok::Wall(n) => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Statically checks the pattern for the defect classes that
    /// historically slipped through to runtime: empty patterns, empty
    /// tokens, ambiguous adjacent wildcards, unreachable whitespace tokens,
    /// and duplicate capture names. Returns every violation as a
    /// `(rule-id, message)` pair; an empty vector means the pattern is
    /// well-formed.
    ///
    /// Rule IDs (documented in DESIGN.md §Static analysis):
    ///
    /// * `pattern-empty` — no tokens at all (matches only empty lines,
    ///   which the filter stage already handles);
    /// * `pattern-empty-token` — a literal or capture with an empty
    ///   string (a no-op token, or an unnameable field);
    /// * `pattern-adjacent-wildcards` — two captures with no delimiter
    ///   between them, so the split point is ambiguous;
    /// * `pattern-unreachable` — a whitespace token directly after
    ///   another (the first consumes the whole run, the second can never
    ///   match);
    /// * `pattern-duplicate-capture` — the same capture name twice, which
    ///   produces a duplicate field and fails schema inference at runtime.
    pub fn issues(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        if self.toks.is_empty() {
            out.push((
                "pattern-empty",
                "pattern has no tokens and can only match empty lines".to_string(),
            ));
        }
        let mut seen: Vec<&str> = Vec::with_capacity(self.toks.len());
        for (i, tok) in self.toks.iter().enumerate() {
            match tok {
                // perf: validation-time diagnostic — once per pattern, never per line.
                Tok::Lit(l) if l.is_empty() => out.push((
                    "pattern-empty-token",
                    format!("token {i} is an empty literal (a no-op)"),
                )),
                // perf: validation-time diagnostic — once per pattern, never per line.
                Tok::Cap(n) | Tok::Wall(n) if n.is_empty() => out.push((
                    "pattern-empty-token",
                    format!("token {i} is a capture with an empty name"),
                )),
                Tok::Cap(n) | Tok::Wall(n) => {
                    if seen.contains(&n.as_str()) {
                        out.push((
                            "pattern-duplicate-capture",
                            // perf: validation-time diagnostic — once per pattern.
                            format!("capture `{n}` appears more than once"),
                        ));
                    }
                    seen.push(n);
                }
                _ => {}
            }
            if i > 0 {
                let prev = &self.toks[i - 1];
                let is_cap = |t: &Tok| matches!(t, Tok::Cap(_) | Tok::Wall(_));
                if is_cap(prev) && is_cap(tok) {
                    out.push((
                        "pattern-adjacent-wildcards",
                        // perf: validation-time diagnostic — once per pattern.
                        format!("tokens {} and {i} are adjacent captures; the split between them is ambiguous", i - 1),
                    ));
                }
                if matches!(prev, Tok::Ws) && matches!(tok, Tok::Ws) {
                    out.push((
                        "pattern-unreachable",
                        // perf: validation-time diagnostic — once per pattern.
                        format!(
                            "token {i} is whitespace directly after whitespace and can never match"
                        ),
                    ));
                }
            }
        }
        out
    }

    /// [`Pattern::issues`] as a hard check: `Err` with the first violation
    /// as a typed [`TransformError::BadPattern`].
    ///
    /// # Errors
    ///
    /// [`TransformError::BadPattern`] naming the rule and the reason.
    pub fn validate(&self) -> Result<(), TransformError> {
        match self.issues().into_iter().next() {
            None => Ok(()),
            Some((rule, reason)) => Err(TransformError::BadPattern {
                pattern: self.to_string(),
                rule,
                reason,
            }),
        }
    }

    /// Attempts to match the whole line; returns `(name, value)` capture
    /// pairs on success.
    pub fn match_line(&self, line: &str) -> Option<Vec<(String, String)>> {
        let mut caps: Vec<(&str, std::ops::Range<usize>)> = Vec::with_capacity(self.toks.len());
        if Self::match_from(&self.toks, line, 0, &mut caps) {
            // perf: captures materialize once, on the successful parse —
            // the backtracking below moves only byte ranges.
            Some(
                caps.iter()
                    .map(|(name, r)| ((*name).to_string(), line[r.clone()].to_string()))
                    .collect(),
            )
        } else {
            None
        }
    }

    /// Allocation-free backtracking core: `pos` is the byte offset into
    /// `line`; candidate captures are recorded as `(name, byte range)` and
    /// popped on backtrack, so failed attempts cost nothing.
    fn match_from<'p>(
        toks: &'p [Tok],
        line: &str,
        pos: usize,
        caps: &mut Vec<(&'p str, std::ops::Range<usize>)>,
    ) -> bool {
        let rest = &line[pos..];
        let Some((tok, tail_toks)) = toks.split_first() else {
            return rest.is_empty();
        };
        match tok {
            Tok::Lit(l) => {
                rest.starts_with(l.as_str())
                    && Self::match_from(tail_toks, line, pos + l.len(), caps)
            }
            Tok::Ws => {
                let trimmed = rest.trim_start();
                if trimmed.len() == rest.len() {
                    return false; // needs at least one whitespace char
                }
                Self::match_from(tail_toks, line, pos + rest.len() - trimmed.len(), caps)
            }
            Tok::Cap(name) | Tok::Wall(name) => {
                let is_wall = matches!(tok, Tok::Wall(_));
                // Lazily extend the capture until the remaining tokens match.
                // Candidate end positions: before each char boundary + EOL.
                let mut end = 0usize;
                loop {
                    let candidate = &rest[..end];
                    let viable =
                        !candidate.is_empty() && (!is_wall || looks_like_wallclock(candidate));
                    if viable {
                        caps.push((name.as_str(), pos..pos + end));
                        if Self::match_from(tail_toks, line, pos + end, caps) {
                            return true;
                        }
                        caps.pop();
                    }
                    if end >= rest.len() {
                        return false;
                    }
                    // Advance one char.
                    end += rest[end..].chars().next().map_or(1, char::len_utf8);
                    // Plain captures never cross whitespace when the next
                    // token is Ws — handled naturally by backtracking, but
                    // bound capture growth for sanity: captures stop at
                    // newline (lines never contain one anyway).
                }
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.toks {
            match t {
                Tok::Lit(l) => write!(f, "{l}")?,
                Tok::Ws => write!(f, " ")?,
                Tok::Cap(n) => write!(f, "<{n}>")?,
                Tok::Wall(n) => write!(f, "<{n}:wall>")?,
            }
        }
        Ok(())
    }
}

/// `true` if `s` looks like `HH:MM:SS` optionally followed by `.fraction`.
pub fn looks_like_wallclock(s: &str) -> bool {
    mscope_sim::parse_wallclock(s).is_some()
}

/// Builds the common `key=value` suffix tokens `ua= ud= ds= dr=` used by
/// every event-log pattern.
pub fn timestamp_suffix_tokens() -> Vec<Tok> {
    let mut toks = Vec::with_capacity(11);
    for (i, key) in ["ua", "ud", "ds", "dr"].iter().enumerate() {
        if i > 0 {
            toks.push(Tok::Ws);
        }
        // perf: pattern construction — four owned literals, once per
        // declared pattern, never per log line.
        toks.push(Tok::lit(&format!("{key}=")));
        toks.push(Tok::cap(key));
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_ws() {
        let p = Pattern::new(vec![Tok::lit("a"), Tok::Ws, Tok::lit("b")]);
        assert!(p.match_line("a b").is_some());
        assert!(p.match_line("a    b").is_some());
        assert!(p.match_line("ab").is_none());
        assert!(p.match_line("a b ").is_none(), "must match whole line");
    }

    #[test]
    fn capture_until_next_literal() {
        let p = Pattern::new(vec![Tok::lit("ID="), Tok::cap("id"), Tok::lit(" end")]);
        let caps = p.match_line("ID=00AB end").unwrap();
        assert_eq!(caps, vec![("id".to_string(), "00AB".to_string())]);
    }

    #[test]
    fn capture_at_end_takes_rest() {
        let p = Pattern::new(vec![Tok::lit("x="), Tok::cap("v")]);
        assert_eq!(p.match_line("x=hello world").unwrap()[0].1, "hello world");
        assert!(p.match_line("x=").is_none(), "captures are non-empty");
    }

    #[test]
    fn lazy_capture_backtracks() {
        // The first "/*" would be a greedy trap; lazy matching finds the
        // split that satisfies the rest of the pattern.
        let p = Pattern::new(vec![
            Tok::cap("sql"),
            Tok::lit("/*ID="),
            Tok::cap("id"),
            Tok::lit("*/"),
        ]);
        let caps = p.match_line("SELECT a /*x*/ FROM t /*ID=7F*/").unwrap();
        assert_eq!(caps[0].1, "SELECT a /*x*/ FROM t ");
        assert_eq!(caps[1].1, "7F");
    }

    #[test]
    fn wallclock_capture_is_shape_checked() {
        let p = Pattern::new(vec![Tok::wall("t")]);
        assert!(p.match_line("00:00:01.500000").is_some());
        assert!(p.match_line("12:59:59").is_some());
        assert!(p.match_line("Device:").is_none());
        assert!(p.match_line("1234").is_none());
    }

    #[test]
    fn wallclock_then_fields() {
        let p = Pattern::new(vec![Tok::wall("t"), Tok::Ws, Tok::cap("v")]);
        let caps = p.match_line("00:00:00.050000 42.5").unwrap();
        assert_eq!(caps[0].1, "00:00:00.050000");
        assert_eq!(caps[1].1, "42.5");
    }

    #[test]
    fn capture_names_listed() {
        let p = Pattern::new(vec![
            Tok::wall("t"),
            Tok::Ws,
            Tok::cap("a"),
            Tok::Ws,
            Tok::cap("b"),
        ]);
        assert_eq!(p.capture_names(), vec!["t", "a", "b"]);
    }

    #[test]
    fn suffix_tokens_match_rendered_suffix() {
        let mut toks = vec![Tok::lit("x")];
        toks.push(Tok::Ws);
        toks.extend(timestamp_suffix_tokens());
        let p = Pattern::new(toks);
        let caps = p
            .match_line("x ua=00:00:00.010000 ud=00:00:00.020000 ds=- dr=-")
            .unwrap();
        assert_eq!(caps.len(), 4);
        assert_eq!(caps[2], ("ds".to_string(), "-".to_string()));
    }

    #[test]
    fn validate_accepts_well_formed_patterns() {
        for p in [
            Pattern::new(vec![Tok::lit("ID="), Tok::cap("id")]),
            Pattern::new(vec![Tok::wall("t"), Tok::Ws, Tok::cap("v")]),
            Pattern::new(timestamp_suffix_tokens()),
        ] {
            assert!(p.issues().is_empty(), "{p} should be clean");
            p.validate().unwrap();
        }
    }

    #[test]
    fn empty_pattern_rejected() {
        let p = Pattern::new(vec![]);
        assert_eq!(p.issues()[0].0, "pattern-empty");
        assert!(matches!(
            p.validate(),
            Err(TransformError::BadPattern {
                rule: "pattern-empty",
                ..
            })
        ));
    }

    #[test]
    fn empty_tokens_rejected() {
        let p = Pattern::new(vec![Tok::lit(""), Tok::cap("x")]);
        assert_eq!(p.issues()[0].0, "pattern-empty-token");
        let p = Pattern::new(vec![Tok::cap("")]);
        assert_eq!(p.issues()[0].0, "pattern-empty-token");
    }

    #[test]
    fn adjacent_wildcards_rejected() {
        let p = Pattern::new(vec![Tok::cap("a"), Tok::cap("b")]);
        assert_eq!(p.issues()[0].0, "pattern-adjacent-wildcards");
        let p = Pattern::new(vec![Tok::lit("x"), Tok::wall("t"), Tok::cap("rest")]);
        assert_eq!(p.issues()[0].0, "pattern-adjacent-wildcards");
        // A delimiter between captures clears the ambiguity.
        let p = Pattern::new(vec![Tok::cap("a"), Tok::Ws, Tok::cap("b")]);
        assert!(p.issues().is_empty());
    }

    #[test]
    fn double_whitespace_rejected() {
        let p = Pattern::new(vec![Tok::lit("x"), Tok::Ws, Tok::Ws, Tok::cap("v")]);
        assert_eq!(p.issues()[0].0, "pattern-unreachable");
    }

    #[test]
    fn duplicate_capture_rejected() {
        let p = Pattern::new(vec![Tok::cap("id"), Tok::Ws, Tok::cap("id")]);
        assert_eq!(p.issues()[0].0, "pattern-duplicate-capture");
    }

    #[test]
    fn display_renders_template() {
        let p = Pattern::new(vec![
            Tok::lit("ID="),
            Tok::cap("id"),
            Tok::Ws,
            Tok::wall("t"),
        ]);
        assert_eq!(p.to_string(), "ID=<id> <t:wall>");
    }
}
