//! Cell values and the column-type lattice used for bottom-up schema
//! inference (paper §III-B3: "the narrowest data type that can store all of
//! the values for the same XML tag is the one selected").

use std::cmp::Ordering;
use std::fmt;

/// A single cell value in an mScopeDB table.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing / empty.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Microseconds since experiment start (parsed from `HH:MM:SS.ffffff`).
    Timestamp(i64),
    /// Arbitrary text.
    Text(String),
}
mscope_serdes::json_enum!(Value { Null, Bool(a), Int(a), Float(a), Timestamp(a), Text(a) });

/// Column data types, ordered by the inference lattice:
/// `Null < Bool|Int|Timestamp`, `Int < Float`, everything `< Text`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Only nulls seen so far.
    Null,
    /// Booleans.
    Bool,
    /// Integers.
    Int,
    /// Floats (also admits integers).
    Float,
    /// Timestamps.
    Timestamp,
    /// Text (admits everything).
    Text,
}
mscope_serdes::json_enum!(ColumnType {
    Null,
    Bool,
    Int,
    Float,
    Timestamp,
    Text
});

impl ColumnType {
    /// The least upper bound of two types in the inference lattice — the
    /// narrowest type that can store values of both.
    ///
    /// # Examples
    ///
    /// ```
    /// use mscope_db::ColumnType;
    /// assert_eq!(ColumnType::Int.unify(ColumnType::Float), ColumnType::Float);
    /// assert_eq!(ColumnType::Int.unify(ColumnType::Bool), ColumnType::Text);
    /// assert_eq!(ColumnType::Null.unify(ColumnType::Timestamp), ColumnType::Timestamp);
    /// ```
    pub fn unify(self, other: ColumnType) -> ColumnType {
        use ColumnType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Null, x) | (x, Null) => x,
            (Int, Float) | (Float, Int) => Float,
            _ => Text,
        }
    }

    /// `true` if a value of type `v` can be stored in a column of this type
    /// without information loss (per the same lattice).
    pub fn admits(self, v: ColumnType) -> bool {
        self.unify(v) == self
    }

    /// `true` if unifying two column types loses information — the join
    /// degenerates to [`ColumnType::Text`] even though neither side was
    /// `Text` (e.g. `Int ∪ Timestamp`). Used by declaration checking and
    /// the lint trace front to flag narrowing along the pipeline.
    ///
    /// # Examples
    ///
    /// ```
    /// use mscope_db::ColumnType;
    /// assert!(ColumnType::Int.lossy_join(ColumnType::Timestamp));
    /// assert!(!ColumnType::Int.lossy_join(ColumnType::Float));
    /// assert!(!ColumnType::Text.lossy_join(ColumnType::Int));
    /// ```
    pub fn lossy_join(self, other: ColumnType) -> bool {
        self.unify(other) == ColumnType::Text
            && self != ColumnType::Text
            && other != ColumnType::Text
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Null => "null",
            ColumnType::Bool => "bool",
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Timestamp => "timestamp",
            ColumnType::Text => "text",
        };
        f.write_str(s)
    }
}

impl Value {
    /// The type of this value.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Null => ColumnType::Null,
            Value::Bool(_) => ColumnType::Bool,
            Value::Int(_) => ColumnType::Int,
            Value::Float(_) => ColumnType::Float,
            Value::Timestamp(_) => ColumnType::Timestamp,
            Value::Text(_) => ColumnType::Text,
        }
    }

    /// Infers the narrowest value from raw text, the first step of schema
    /// inference. Empty string and `"-"` become [`Value::Null`].
    ///
    /// # Examples
    ///
    /// ```
    /// use mscope_db::Value;
    /// assert_eq!(Value::infer("42"), Value::Int(42));
    /// assert_eq!(Value::infer("3.5"), Value::Float(3.5));
    /// assert_eq!(Value::infer("true"), Value::Bool(true));
    /// assert_eq!(Value::infer(""), Value::Null);
    /// assert_eq!(Value::infer("00:00:01.000000"), Value::Timestamp(1_000_000));
    /// assert_eq!(Value::infer("hello"), Value::Text("hello".into()));
    /// ```
    pub fn infer(raw: &str) -> Value {
        let t = raw.trim();
        if t.is_empty() || t == "-" {
            return Value::Null;
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        match t {
            "true" | "TRUE" | "True" => return Value::Bool(true),
            "false" | "FALSE" | "False" => return Value::Bool(false),
            _ => {}
        }
        if let Some(ts) = mscope_sim::parse_wallclock(t) {
            return Value::Timestamp(ts.as_micros() as i64);
        }
        Value::Text(t.to_string())
    }

    /// Numeric view: `Int`, `Float`, and `Timestamp` (as µs) convert;
    /// `Bool` maps to 0/1; `Null`/`Text` do not.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Null | Value::Text(_) => None,
        }
    }

    /// Integer view of `Int`/`Timestamp`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Text view (only for `Text`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Total ordering for sorting and range predicates: Null < Bool < Int ~
    /// Float (numeric comparison) < Timestamp < Text; numerics compare by
    /// value across Int/Float.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Timestamp(_) => 3,
                Text(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// A hashable key form for joins and group-by (floats keyed by bits).
    pub fn key(&self) -> ValueKey {
        match self {
            Value::Null => ValueKey::Null,
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Int(i) => ValueKey::Int(*i),
            Value::Float(f) => ValueKey::Float(f.to_bits()),
            Value::Timestamp(t) => ValueKey::Timestamp(*t),
            Value::Text(s) => ValueKey::Text(s.clone()),
        }
    }

    /// Renders the value the way the CSV stage writes it.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Timestamp(t) => {
                mscope_sim::wallclock(mscope_sim::SimTime::from_micros((*t).max(0) as u64))
            }
            Value::Text(s) => s.clone(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

/// Hashable key form of a [`Value`] (floats by bit pattern). Ordered —
/// variant first, then payload — so distinct-counting can sort keys
/// directly instead of comparing rendered debug strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKey {
    /// Null key.
    Null,
    /// Bool key.
    Bool(bool),
    /// Int key.
    Int(i64),
    /// Float key (bit pattern).
    Float(u64),
    /// Timestamp key.
    Timestamp(i64),
    /// Text key.
    Text(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_is_commutative_and_idempotent() {
        use ColumnType::*;
        let all = [Null, Bool, Int, Float, Timestamp, Text];
        for &a in &all {
            assert_eq!(a.unify(a), a);
            for &b in &all {
                assert_eq!(a.unify(b), b.unify(a));
                // Text is the top element.
                assert_eq!(a.unify(Text), Text);
            }
        }
    }

    #[test]
    fn lattice_associative() {
        use ColumnType::*;
        let all = [Null, Bool, Int, Float, Timestamp, Text];
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    assert_eq!(a.unify(b).unify(c), a.unify(b.unify(c)));
                }
            }
        }
    }

    #[test]
    fn admits_matches_unify() {
        assert!(ColumnType::Float.admits(ColumnType::Int));
        assert!(!ColumnType::Int.admits(ColumnType::Float));
        assert!(ColumnType::Text.admits(ColumnType::Timestamp));
        assert!(ColumnType::Timestamp.admits(ColumnType::Null));
    }

    #[test]
    fn inference_narrowest_first() {
        assert_eq!(Value::infer("0"), Value::Int(0));
        assert_eq!(Value::infer("-17"), Value::Int(-17));
        assert_eq!(Value::infer("2.50"), Value::Float(2.5));
        assert_eq!(Value::infer("1e3"), Value::Float(1000.0));
        assert_eq!(Value::infer("  42 "), Value::Int(42));
        assert_eq!(Value::infer("-"), Value::Null);
        assert_eq!(Value::infer("NaN"), Value::Text("NaN".into()));
        assert_eq!(
            Value::infer("01:02:03.000004"),
            Value::Timestamp(3_723_000_004)
        );
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Timestamp(5).as_i64(), Some(5));
        assert_eq!(Value::Text("abc".into()).as_str(), Some("abc"));
    }

    #[test]
    fn ordering_across_numerics() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::Text("b".into()).total_cmp(&Value::Text("a".into())),
            Ordering::Greater
        );
    }

    #[test]
    fn render_roundtrips_through_infer() {
        for v in [
            Value::Int(7),
            Value::Float(1.25),
            Value::Bool(true),
            Value::Timestamp(1_500_000),
            Value::Null,
        ] {
            let back = Value::infer(&v.render());
            assert_eq!(v, back, "render {:?} → {:?}", v, back);
        }
    }

    #[test]
    fn float_keys_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Float(1.5).key());
        set.insert(Value::Float(1.5).key());
        set.insert(Value::Int(1).key());
        assert_eq!(set.len(), 2);
    }
}
