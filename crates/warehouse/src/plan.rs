//! Stats-driven query planning: the logical pipeline behind every SQL
//! query (`Scan → Filter → Join → Aggregate → Sort → Limit`) and the
//! statistics-guided choices that turn it into a physical plan.
//!
//! The parser ([`sql`](crate::sql)) produces a [`ParsedQuery`] — pure
//! syntax. [`resolve`] binds it against schemas (shared by the static
//! type-checker, so `sql::check_with` stays in lockstep with execution by
//! construction), and [`plan`] attaches live tables plus the statistics
//! the engine already maintains:
//!
//! * **predicate pushdown** — the WHERE tree splits into per-side
//!   conjuncts fused into each scan ([`CompiledPredicate`] zone-map block
//!   skipping); only mixed-side conjuncts survive as a join residual;
//! * **join build side** — [`CompiledPredicate::estimate`] (sorted-column
//!   bounds + per-block zone-map verdicts) estimates each input's
//!   cardinality and the hash index is built on the smaller one;
//! * **projection pushdown** — only columns the output (or an aggregate)
//!   references are ever gathered;
//! * **sort elision** — `ORDER BY <col> ASC` is dropped when the
//!   sorted-on-append flag already proves the scan order, or when the
//!   aggregate's own key order subsumes it.
//!
//! `EXPLAIN` renders the chosen physical plan ([`Plan::explain_table`]).
//! The `optimize = false` leg executes the same [`ParsedQuery`]
//! clause-by-clause in the pre-planner shape — the ablation baseline the
//! benches measure against, and an identity oracle for the property
//! suite.

use crate::db::Database;
use crate::engine::{CompiledPredicate, ScanEstimate};
use crate::query::{AggFn, Predicate};
use crate::table::{Column, Schema, Table};
use crate::value::{ColumnType, Value};
use crate::DbError;

// ---------------------------------------------------------------------
// Parsed syntax
// ---------------------------------------------------------------------

/// One projected item, as written.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SelectItem {
    /// `*`
    Star,
    /// A bare column.
    Col(String),
    /// `AGG(col)`; `col == "*"` only for `COUNT(*)`.
    Agg { agg: AggFn, col: String },
}

/// `JOIN <table> ON [<qual>.]<col> = [<qual>.]<col>`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct JoinClause {
    pub table: String,
    pub left_qual: Option<String>,
    pub left_col: String,
    pub right_qual: Option<String>,
    pub right_col: String,
}

/// A parsed query — syntax only, nothing resolved.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ParsedQuery {
    pub explain: bool,
    pub items: Vec<SelectItem>,
    pub table: String,
    pub join: Option<JoinClause>,
    pub predicate: Predicate,
    pub group_by: Vec<String>,
    pub having: Option<Predicate>,
    pub order_by: Option<(String, bool)>,
    pub limit: Option<usize>,
}

// ---------------------------------------------------------------------
// Resolution (shared by planning and static checking)
// ---------------------------------------------------------------------

/// Which input a source column lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    /// The FROM table.
    Left,
    /// The JOIN table.
    Right,
}

/// One column of the (possibly joined) source relation: its output name
/// (right-side collisions prefixed `<right-table>_`) and where its cells
/// live.
#[derive(Debug, Clone)]
pub(crate) struct SourceCol {
    pub name: String,
    pub side: Side,
    pub ci: usize,
    pub ty: ColumnType,
}

/// One aggregate output.
#[derive(Debug, Clone)]
pub(crate) struct AggItem {
    pub agg: AggFn,
    /// Source column index; `None` aggregates the row itself (`COUNT(*)`).
    pub src: Option<usize>,
    pub name: String,
}

/// The aggregation stage, when the projection contains aggregates.
#[derive(Debug, Clone)]
pub(crate) struct AggregateNode {
    /// Group-key source column indices, in GROUP BY order.
    pub keys: Vec<usize>,
    /// Output names for the keys (`<key>_key` when an aggregate output
    /// already claims the plain name).
    pub key_names: Vec<String>,
    pub aggs: Vec<AggItem>,
    /// No GROUP BY: one-row whole-table aggregate.
    pub whole_table: bool,
}

/// A [`ParsedQuery`] bound to schemas: source relation, aggregation or
/// projection, result schema and name. Pure — no table data touched —
/// so the lint-side schema oracle resolves queries identically to the
/// executor.
#[derive(Debug, Clone)]
pub(crate) struct Resolved {
    pub source: Vec<SourceCol>,
    pub aggregate: Option<AggregateNode>,
    /// Non-aggregate output: source column indices in projection order.
    pub projection: Vec<usize>,
    /// The result schema — what ORDER BY and HAVING see.
    pub result: Schema,
    pub result_name: String,
    /// Join key column indices `(left table, right table)`.
    pub join_keys: Option<(usize, usize)>,
}

/// The display label of an aggregate (`avg`, `count`, …) used in result
/// column names.
pub(crate) fn agg_label(agg: AggFn) -> &'static str {
    match agg {
        AggFn::Mean => "avg",
        AggFn::Max => "max",
        AggFn::Min => "min",
        AggFn::Sum => "sum",
        AggFn::Count => "count",
        AggFn::Last => "last",
    }
}

/// Binds a parsed query against the FROM schema (and the JOIN schema when
/// present), producing the source relation, the aggregation/projection
/// stage, and the result schema. All naming and validation rules live
/// here, once.
///
/// # Errors
///
/// [`DbError::NoSuchColumn`] for unknown projection/key/ORDER BY columns;
/// [`DbError::BadQuery`] for structural errors (keyed aggregate without
/// GROUP BY, GROUP BY without an aggregate, HAVING without GROUP BY,
/// unknown ON qualifiers); [`DbError::DuplicateColumn`] when the result
/// schema collides.
pub(crate) fn resolve(
    q: &ParsedQuery,
    left_name: &str,
    left: &Schema,
    right: Option<(&str, &Schema)>,
) -> Result<Resolved, DbError> {
    let mut source: Vec<SourceCol> = left
        .columns()
        .iter()
        .enumerate()
        .map(|(ci, c)| SourceCol {
            name: c.name.clone(),
            side: Side::Left,
            ci,
            ty: c.ty,
        })
        .collect();
    let mut join_keys = None;
    let mut base_name = left_name.to_string();

    if let (Some(j), Some((rname, rschema))) = (q.join.as_ref(), right) {
        source.reserve(rschema.len());
        for (ci, c) in rschema.columns().iter().enumerate() {
            let name = if left.index_of(&c.name).is_some() {
                // perf: once per schema column, owned by the plan
                format!("{rname}_{}", c.name)
            } else {
                // perf: once per schema column, owned by the plan
                c.name.clone()
            };
            if source.iter().any(|s| s.name == name) {
                return Err(DbError::BadQuery(format!(
                    "join of {left_name} and {rname} produces duplicate column names"
                )));
            }
            source.push(SourceCol {
                name,
                side: Side::Right,
                ci,
                ty: c.ty,
            });
        }
        // ON key resolution, honoring optional qualifiers (and the
        // swapped `ON right.x = left.y` spelling).
        let (mut lq, mut lcol) = (j.left_qual.as_deref(), j.left_col.as_str());
        let (mut rq, mut rcol) = (j.right_qual.as_deref(), j.right_col.as_str());
        if (lq == Some(rname) || rq == Some(left_name)) && left_name != rname {
            std::mem::swap(&mut lq, &mut rq);
            std::mem::swap(&mut lcol, &mut rcol);
        }
        for (qual, expect) in [(lq, left_name), (rq, rname)] {
            if let Some(t) = qual {
                if t != expect {
                    return Err(DbError::BadQuery(format!(
                        "unknown table qualifier `{t}` in ON clause"
                    )));
                }
            }
        }
        let lci = left
            .index_of(lcol)
            .ok_or_else(|| DbError::NoSuchColumn(lcol.to_string()))?;
        let rci = rschema
            .index_of(rcol)
            .ok_or_else(|| DbError::NoSuchColumn(rcol.to_string()))?;
        join_keys = Some((lci, rci));
        base_name = format!("{left_name}_x_{rname}");
    }

    let find = |name: &str| source.iter().position(|s| s.name == name);
    let has_agg = q.items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
    let has_star = q.items.iter().any(|i| matches!(i, SelectItem::Star));
    let plain: Vec<&String> = q
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Col(c) => Some(c),
            _ => None,
        })
        .collect();

    if !q.group_by.is_empty() && !has_agg {
        return Err(DbError::BadQuery(
            "GROUP BY requires an aggregate projection".into(),
        ));
    }
    if q.having.is_some() && q.group_by.is_empty() {
        return Err(DbError::BadQuery("HAVING requires GROUP BY".into()));
    }

    let mut aggregate = None;
    let mut projection = Vec::new();
    let mut result_cols: Vec<Column> = Vec::new();
    let mut result_name = base_name.clone();

    if has_agg {
        if has_star {
            return Err(DbError::BadQuery("cannot mix `*` with aggregates".into()));
        }
        if q.group_by.is_empty() && !plain.is_empty() {
            return Err(DbError::BadQuery(
                "keyed aggregate requires GROUP BY".into(),
            ));
        }
        for c in &plain {
            if !q.group_by.iter().any(|g| g == *c) {
                return Err(DbError::BadQuery(format!(
                    "projection column `{c}` must appear in GROUP BY"
                )));
            }
        }
        let whole_table = q.group_by.is_empty();
        let mut keys = Vec::with_capacity(q.group_by.len());
        for g in &q.group_by {
            let si = find(g).ok_or_else(|| DbError::NoSuchColumn(g.clone()))?;
            if keys.contains(&si) {
                return Err(DbError::BadQuery(format!("duplicate GROUP BY key `{g}`")));
            }
            keys.push(si);
        }
        let mut aggs: Vec<AggItem> = Vec::with_capacity(q.items.len());
        for item in &q.items {
            let SelectItem::Agg { agg, col } = item else {
                continue;
            };
            let (src, base) = if col == "*" {
                let n = if whole_table { "count_*" } else { "count" };
                // perf: once per projection item, owned by the plan
                (None, n.to_string())
            } else {
                let si = find(col).ok_or_else(|| DbError::NoSuchColumn(col.clone()))?;
                let n = if whole_table {
                    // perf: once per projection item, owned by the plan
                    format!("{}_{col}", agg_label(*agg))
                } else {
                    // perf: once per projection item, owned by the plan
                    col.clone()
                };
                (Some(si), n)
            };
            // A second aggregate over the same column falls back to the
            // `<agg>_<col>` spelling; a collision past that is an error.
            // perf: cold rename path, at most once per projection item.
            let name = if aggs.iter().any(|a| a.name == base) {
                format!(
                    "{}_{}",
                    agg_label(*agg),
                    if col == "*" { "star" } else { col.as_str() }
                )
            } else {
                base
            };
            if aggs.iter().any(|a| a.name == name) {
                return Err(DbError::DuplicateColumn(name));
            }
            aggs.push(AggItem {
                agg: *agg,
                src,
                name,
            });
        }
        let key_names: Vec<String> = keys
            .iter()
            .map(|&si| {
                let k = &source[si].name;
                if aggs.iter().any(|a| a.name == *k) {
                    format!("{k}_key")
                } else {
                    k.clone()
                }
            })
            .collect();
        result_cols.reserve(key_names.len() + aggs.len());
        for kn in &key_names {
            // perf: once per result column — the schema owns its names.
            result_cols.push(Column::new(kn.clone(), ColumnType::Text));
        }
        for a in &aggs {
            // perf: once per result column — the schema owns its names.
            result_cols.push(Column::new(a.name.clone(), ColumnType::Float));
        }
        result_name = if whole_table {
            "result".to_string()
        } else {
            format!("{base_name}_by_{}", q.group_by[0])
        };
        aggregate = Some(AggregateNode {
            keys,
            key_names,
            aggs,
            whole_table,
        });
    } else {
        if has_star {
            projection = (0..source.len()).collect();
        } else {
            projection.reserve(plain.len());
            for c in &plain {
                let si = find(c).ok_or_else(|| DbError::NoSuchColumn((*c).clone()))?;
                projection.push(si);
            }
        }
        result_cols.reserve(projection.len());
        for &si in &projection {
            // perf: once per result column — the schema owns its names.
            result_cols.push(Column::new(source[si].name.clone(), source[si].ty));
        }
    }

    let result = Schema::new(result_cols)?;
    if let Some((oc, _)) = &q.order_by {
        if result.index_of(oc).is_none() {
            return Err(DbError::NoSuchColumn(oc.clone()));
        }
    }
    Ok(Resolved {
        source,
        aggregate,
        projection,
        result,
        result_name,
        join_keys,
    })
}

// ---------------------------------------------------------------------
// Predicate pushdown helpers
// ---------------------------------------------------------------------

/// Flattens nested ANDs into top-level conjuncts.
fn conjuncts(p: &Predicate) -> Vec<&Predicate> {
    match p {
        Predicate::And(ps) => ps.iter().flat_map(conjuncts).collect(),
        _ => vec![p],
    }
}

/// Collects every column name a predicate mentions.
fn pred_cols<'p>(p: &'p Predicate, out: &mut Vec<&'p str>) {
    match p {
        Predicate::True => {}
        Predicate::Eq(c, _)
        | Predicate::Ne(c, _)
        | Predicate::Lt(c, _)
        | Predicate::Le(c, _)
        | Predicate::Gt(c, _)
        | Predicate::Ge(c, _)
        | Predicate::Between(c, _, _) => out.push(c),
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                pred_cols(q, out);
            }
        }
        Predicate::Not(q) => pred_cols(q, out),
    }
}

/// Clones a predicate with every column name rewritten through `f`.
fn rename_pred(p: &Predicate, f: &impl Fn(&str) -> String) -> Predicate {
    match p {
        Predicate::True => Predicate::True,
        Predicate::Eq(c, v) => Predicate::Eq(f(c), v.clone()),
        Predicate::Ne(c, v) => Predicate::Ne(f(c), v.clone()),
        Predicate::Lt(c, v) => Predicate::Lt(f(c), v.clone()),
        Predicate::Le(c, v) => Predicate::Le(f(c), v.clone()),
        Predicate::Gt(c, v) => Predicate::Gt(f(c), v.clone()),
        Predicate::Ge(c, v) => Predicate::Ge(f(c), v.clone()),
        Predicate::Between(c, lo, hi) => Predicate::Between(f(c), lo.clone(), hi.clone()),
        Predicate::And(ps) => Predicate::And(ps.iter().map(|q| rename_pred(q, f)).collect()),
        Predicate::Or(ps) => Predicate::Or(ps.iter().map(|q| rename_pred(q, f)).collect()),
        Predicate::Not(q) => Predicate::Not(Box::new(rename_pred(q, f))),
    }
}

fn pack(mut v: Vec<Predicate>) -> Predicate {
    match v.len() {
        0 => Predicate::True,
        1 => v.remove(0),
        _ => Predicate::And(v),
    }
}

// ---------------------------------------------------------------------
// The physical plan
// ---------------------------------------------------------------------

/// A planned query: resolved structure, split predicates, the chosen
/// join build side, pushdown/elision decisions, and the scan estimates
/// that justified them (surfaced by `EXPLAIN`).
pub(crate) struct Plan<'a> {
    pub left: &'a Table,
    pub right: Option<&'a Table>,
    pub res: Resolved,
    /// Conjuncts fused into the left scan.
    pub left_pred: Predicate,
    /// Conjuncts fused into the right scan (right-table column names).
    pub right_pred: Predicate,
    /// Mixed-side conjuncts evaluated over join pairs.
    pub residual: Predicate,
    /// Hash the left input (statistics say it is smaller).
    pub build_left: bool,
    pub having: Option<Predicate>,
    pub order_by: Option<(String, bool)>,
    /// The sort is provably redundant and skipped.
    pub sort_elided: bool,
    pub limit: Option<usize>,
    pub optimize: bool,
    /// Source columns the executor must gather (projection pushdown),
    /// ascending.
    pub needed: Vec<usize>,
    pub left_est: ScanEstimate,
    pub right_est: Option<ScanEstimate>,
}

/// Plans a parsed query against live tables. With `optimize = false`
/// every statistics-driven choice is pinned to the syntactic
/// (pre-planner) shape: whole WHERE after the join, build side always
/// right, no projection pushdown, no sort elision.
///
/// # Errors
///
/// [`DbError::NoSuchTable`] for unknown tables, plus everything
/// [`resolve`] raises.
pub(crate) fn plan<'a>(
    db: &'a Database,
    q: &ParsedQuery,
    optimize: bool,
) -> Result<Plan<'a>, DbError> {
    let left = db.require(&q.table)?;
    let right = match &q.join {
        Some(j) => Some(db.require(&j.table)?),
        None => None,
    };
    let res = resolve(
        q,
        left.name(),
        left.schema(),
        right.map(|t| (t.name(), t.schema())),
    )?;

    // Predicate pushdown: classify each conjunct by the side(s) it
    // touches. Unknown columns stay on the left scan, where the compiled
    // engine's exploratory-filter semantics (always false) apply.
    let (mut lp, mut rp, mut residual) = (Vec::new(), Vec::new(), Vec::new());
    if let (Some(right_t), true) = (right, optimize) {
        for c in conjuncts(&q.predicate) {
            let mut cols = Vec::new();
            pred_cols(c, &mut cols);
            let side_of = |name: &str| res.source.iter().find(|s| s.name == name).map(|s| s.side);
            let has_l = cols.iter().any(|n| side_of(n) == Some(Side::Left));
            let has_r = cols.iter().any(|n| side_of(n) == Some(Side::Right));
            if has_l && has_r {
                // perf: once per WHERE conjunct — each scan owns its
                // pushed-down predicate tree.
                residual.push(c.clone());
            } else if has_r {
                // Rewrite source-relation names back to the right table's
                // own column names so the conjunct compiles on that scan.
                let renamed = rename_pred(c, &|n: &str| {
                    res.source
                        .iter()
                        .find(|s| s.name == n && s.side == Side::Right)
                        // perf: once per WHERE conjunct, owned by the copy
                        .map(|s| right_t.schema().columns()[s.ci].name.clone())
                        .unwrap_or_else(|| n.to_string())
                });
                rp.push(renamed);
            } else {
                // perf: once per WHERE conjunct — each scan owns its
                // pushed-down predicate tree.
                lp.push(c.clone());
            }
        }
    } else if right.is_some() {
        // Planner off: the whole WHERE filters the materialized join.
        residual.push(q.predicate.clone());
    } else {
        lp.push(q.predicate.clone());
    }
    let (left_pred, right_pred, residual) = (pack(lp), pack(rp), pack(residual));

    let left_est = CompiledPredicate::compile(left, &left_pred).estimate();
    let mut build_left = false;
    let mut right_est = None;
    if let Some(rt) = right {
        let re = CompiledPredicate::compile(rt, &right_pred).estimate();
        build_left = optimize && left_est.rows < re.rows;
        right_est = Some(re);
    }

    // Projection pushdown: the columns the executor actually gathers.
    let needed: Vec<usize> = if !optimize {
        (0..res.source.len()).collect()
    } else if let Some(agg) = &res.aggregate {
        let mut v: Vec<usize> = agg.keys.clone();
        v.extend(agg.aggs.iter().filter_map(|a| a.src));
        v.sort_unstable();
        v.dedup();
        v
    } else {
        res.projection.clone()
    };

    // Sort elision: ORDER BY ASC is redundant when order is already
    // proven. Never elide DESC.
    let mut sort_elided = false;
    if let (true, Some((oc, true))) = (optimize, q.order_by.clone()) {
        if let Some(agg) = &res.aggregate {
            // Aggregate output is sorted by its key tuple; a stable sort
            // on the first key is the identity exactly when that key's
            // rendered (Text) order matches its original order.
            sort_elided = !agg.whole_table
                && agg.key_names.first() == Some(&oc)
                && agg
                    .keys
                    .first()
                    .is_some_and(|&si| res.source[si].ty == ColumnType::Text);
        } else if right.is_none() {
            // A base-table scan emits rows ascending; the sorted-on-append
            // flag proves the column is already in that order.
            if let Some(&si) = res.projection.iter().find(|&&si| res.source[si].name == oc) {
                sort_elided = left
                    .table_index()
                    .col(res.source[si].ci)
                    .is_some_and(|c| c.sorted());
            }
        }
    }

    Ok(Plan {
        left,
        right,
        res,
        left_pred,
        right_pred,
        residual,
        build_left,
        having: q.having.clone(),
        order_by: q.order_by.clone(),
        sort_elided,
        limit: q.limit,
        optimize,
        needed,
        left_est,
        right_est,
    })
}

// ---------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------

fn render_lit(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Text(s) => format!("'{s}'"),
        other => other.render(),
    }
}

/// Renders a predicate in SQL-ish form for EXPLAIN output.
pub(crate) fn render_pred(p: &Predicate) -> String {
    match p {
        Predicate::True => "true".to_string(),
        Predicate::Eq(c, v) => format!("{c} = {}", render_lit(v)),
        Predicate::Ne(c, v) => format!("{c} != {}", render_lit(v)),
        Predicate::Lt(c, v) => format!("{c} < {}", render_lit(v)),
        Predicate::Le(c, v) => format!("{c} <= {}", render_lit(v)),
        Predicate::Gt(c, v) => format!("{c} > {}", render_lit(v)),
        Predicate::Ge(c, v) => format!("{c} >= {}", render_lit(v)),
        Predicate::Between(c, lo, hi) => {
            format!("{c} in [{}, {})", render_lit(lo), render_lit(hi))
        }
        Predicate::And(ps) => {
            let parts: Vec<String> = ps.iter().map(render_pred).collect();
            format!("({})", parts.join(" AND "))
        }
        Predicate::Or(ps) => {
            let parts: Vec<String> = ps.iter().map(render_pred).collect();
            format!("({})", parts.join(" OR "))
        }
        Predicate::Not(q) => format!("NOT {}", render_pred(q)),
    }
}

impl Plan<'_> {
    /// One line per physical operator, in execution order.
    pub(crate) fn explain_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        let scan_line = |t: &Table, pred: &Predicate, est: &ScanEstimate, side: Side| {
            let cols: Vec<&str> = self
                .needed
                .iter()
                .map(|&si| &self.res.source[si])
                .filter(|s| s.side == side)
                .map(|s| s.name.as_str())
                .collect();
            format!(
                "Scan {} rows={} pred={} est={} blocks[skip={} take={} eval={}] cols=[{}]",
                t.name(),
                t.row_count(),
                render_pred(pred),
                est.rows,
                est.skipped,
                est.taken,
                est.evaluated,
                cols.join(", ")
            )
        };
        lines.push(scan_line(
            self.left,
            &self.left_pred,
            &self.left_est,
            Side::Left,
        ));
        if let (Some(rt), Some(est), Some((lci, rci))) =
            (self.right, self.right_est.as_ref(), self.res.join_keys)
        {
            lines.push(scan_line(rt, &self.right_pred, est, Side::Right));
            lines.push(format!(
                "HashJoin {}.{} = {}.{} build={} (est {} vs {} rows)",
                self.left.name(),
                self.left.schema().columns()[lci].name,
                rt.name(),
                rt.schema().columns()[rci].name,
                if self.build_left { "left" } else { "right" },
                self.left_est.rows,
                est.rows,
            ));
            if self.residual != Predicate::True {
                lines.push(format!("Filter {}", render_pred(&self.residual)));
            }
        }
        if let Some(agg) = &self.res.aggregate {
            let keys: Vec<&str> = agg
                .keys
                .iter()
                .map(|&si| self.res.source[si].name.as_str())
                .collect();
            let aggs: Vec<String> = agg
                .aggs
                .iter()
                .map(|a| {
                    let src = a.src.map_or("*", |si| self.res.source[si].name.as_str());
                    format!("{}({src})", agg_label(a.agg))
                })
                .collect();
            lines.push(format!(
                "Aggregate keys=[{}] aggs=[{}]",
                keys.join(", "),
                aggs.join(", ")
            ));
        }
        if let Some(h) = &self.having {
            lines.push(format!("Having {}", render_pred(h)));
        }
        if let Some((oc, asc)) = &self.order_by {
            let mut line = format!("Sort {oc} {}", if *asc { "asc" } else { "desc" });
            if self.sort_elided {
                line.push_str(" (elided: input already sorted)");
            }
            lines.push(line);
        }
        if let Some(n) = self.limit {
            lines.push(format!("Limit {n}"));
        }
        lines
    }

    /// The `EXPLAIN` result: a one-column `plan` table, one operator per
    /// row.
    ///
    /// # Errors
    ///
    /// Never in practice — a one-column schema cannot collide — but the
    /// schema constructor is fallible, so the signature says so.
    pub(crate) fn explain_table(&self) -> Result<Table, DbError> {
        let schema = Schema::new(vec![Column::new("plan", ColumnType::Text)])?;
        let col = self.explain_lines().into_iter().map(Value::Text).collect();
        Ok(Table::from_parts("explain".to_string(), schema, vec![col]))
    }
}
