//! Query operations over [`Table`]s: predicates, projection, windowed
//! aggregation, joins, sorting, and grouping.
//!
//! This is the "advanced analysis" surface the paper attributes to mScopeDB
//! (§III-C): after mScopeDataTransformer loads everything into one place,
//! researchers slice disk utilization per tier, join event records by
//! request ID, and correlate series.

use crate::engine::{self, CompiledPredicate};
use crate::plan::Side;
use crate::table::{Column, Schema, Table};
use crate::value::{ColumnType, Value, ValueKey};
use crate::DbError;
use std::collections::{BTreeMap, HashMap};

/// A filter predicate over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// Column equals value.
    Eq(String, Value),
    /// Column differs from value (nulls excluded).
    Ne(String, Value),
    /// Column < value.
    Lt(String, Value),
    /// Column ≤ value.
    Le(String, Value),
    /// Column > value.
    Gt(String, Value),
    /// Column ≥ value.
    Ge(String, Value),
    /// lo ≤ column < hi (half-open, the natural window form).
    Between(String, Value, Value),
    /// All of the sub-predicates hold.
    And(Vec<Predicate>),
    /// Any of the sub-predicates holds.
    Or(Vec<Predicate>),
    /// Sub-predicate does not hold.
    Not(Box<Predicate>),
}
mscope_serdes::json_enum!(Predicate {
    True,
    Eq(a, b),
    Ne(a, b),
    Lt(a, b),
    Le(a, b),
    Gt(a, b),
    Ge(a, b),
    Between(a, b, c),
    And(a),
    Or(a),
    Not(a),
});

impl Predicate {
    /// Evaluates against row `i` of `table`. Unknown columns make the
    /// comparison false (never an error — filters are exploratory).
    pub fn eval(&self, table: &Table, i: usize) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => Self::cmp(table, i, c, |o| o == std::cmp::Ordering::Equal, v),
            Predicate::Ne(c, v) => Self::cmp(table, i, c, |o| o != std::cmp::Ordering::Equal, v),
            Predicate::Lt(c, v) => Self::cmp(table, i, c, |o| o == std::cmp::Ordering::Less, v),
            Predicate::Le(c, v) => Self::cmp(table, i, c, |o| o != std::cmp::Ordering::Greater, v),
            Predicate::Gt(c, v) => Self::cmp(table, i, c, |o| o == std::cmp::Ordering::Greater, v),
            Predicate::Ge(c, v) => Self::cmp(table, i, c, |o| o != std::cmp::Ordering::Less, v),
            Predicate::Between(c, lo, hi) => {
                Self::cmp(table, i, c, |o| o != std::cmp::Ordering::Less, lo)
                    && Self::cmp(table, i, c, |o| o == std::cmp::Ordering::Less, hi)
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(table, i)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(table, i)),
            Predicate::Not(p) => !p.eval(table, i),
        }
    }

    fn cmp(
        table: &Table,
        i: usize,
        col: &str,
        ok: impl Fn(std::cmp::Ordering) -> bool,
        v: &Value,
    ) -> bool {
        match table.cell(i, col) {
            Some(cell) if !cell.is_null() => ok(cell.total_cmp(v)),
            _ => false,
        }
    }
}

/// Aggregations for [`Table::window_agg`] and [`Table::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Arithmetic mean.
    Mean,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Sum.
    Sum,
    /// Row count (value column still required, nulls skipped).
    Count,
    /// Last value in encounter order.
    Last,
}
mscope_serdes::json_enum!(AggFn {
    Mean,
    Max,
    Min,
    Sum,
    Count,
    Last
});

fn fold(agg: AggFn, values: &[f64]) -> Option<f64> {
    if agg == AggFn::Count {
        return Some(values.len() as f64);
    }
    let last = *values.last()?;
    Some(match agg {
        AggFn::Mean => values.iter().sum::<f64>() / values.len() as f64,
        AggFn::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        AggFn::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
        AggFn::Sum => values.iter().sum(),
        AggFn::Count | AggFn::Last => last,
    })
}

impl Table {
    /// Rows matching `pred`, as a new table. Runs on the compiled engine
    /// ([`CompiledPredicate`]): names bound once, zone-map block skipping,
    /// sorted-column binary search, automatic parallel scan on large
    /// tables. Result-identical to [`Table::filter_naive`].
    pub fn filter(&self, pred: &Predicate) -> Table {
        self.filter_with(pred, 0)
    }

    /// [`Table::filter`] with an explicit scan worker count (`0` = auto:
    /// serial below [`PARALLEL_MIN_ROWS`](crate::PARALLEL_MIN_ROWS)
    /// candidate rows). Output is byte-identical for every worker count.
    pub fn filter_with(&self, pred: &Predicate, workers: usize) -> Table {
        let rows = CompiledPredicate::compile(self, pred).matching_rows_with(workers);
        self.gather(self.name(), &rows)
    }

    /// Reference oracle: the original row-at-a-time scan through
    /// [`Predicate::eval`], kept for property tests and benchmarks.
    pub fn filter_naive(&self, pred: &Predicate) -> Table {
        let rows: Vec<usize> = (0..self.row_count())
            .filter(|&i| pred.eval(self, i))
            .collect();
        self.gather(self.name(), &rows)
    }

    /// Projects the named columns (in the given order) of rows matching
    /// `pred`. The matching row set is computed once on the compiled
    /// engine and only the projected columns are materialized.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] if any projected column is missing;
    /// [`DbError::DuplicateColumn`] if a column is projected twice.
    pub fn select(&self, cols: &[&str], pred: &Predicate) -> Result<Table, DbError> {
        let idxs: Vec<usize> = cols
            .iter()
            .map(|c| {
                self.schema()
                    .index_of(c)
                    .ok_or_else(|| DbError::NoSuchColumn(c.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let schema = Schema::new(
            idxs.iter()
                .map(|&i| self.schema().columns()[i].clone())
                .collect(),
        )?;
        let rows = CompiledPredicate::compile(self, pred).matching_rows_with(0);
        let cols_data: Vec<Vec<Value>> = idxs
            .iter()
            .map(|&ci| rows.iter().map(|&r| self.col(ci)[r].clone()).collect())
            .collect();
        Ok(Table::from_parts(
            self.name().to_string(),
            schema,
            cols_data,
        ))
    }

    /// Shorthand: rows whose `time_col` lies in `[from, to)` (µs values,
    /// works on Int or Timestamp columns). On a sorted Int/Timestamp
    /// column this binary-searches the two boundaries instead of
    /// scanning; otherwise it scans the typed column slice (still no
    /// per-row name lookup).
    pub fn time_range(&self, time_col: &str, from: i64, to: i64) -> Table {
        let Some(ci) = self.schema().index_of(time_col) else {
            return self.gather(self.name(), &[]);
        };
        let col = self.col(ci);
        let ty = self.schema().columns()[ci].ty;
        let sorted = self.table_index().col(ci).is_some_and(|c| c.sorted());
        // The typed probes must match the column's value type: `as_i64`
        // reads Int and Timestamp only, and `total_cmp` ranks Int below
        // Timestamp, so a cross-typed probe would be wrong. Float columns
        // (which may mix Int cells past `as_i64` with Float cells that
        // never match) always take the scan path.
        let probe: Option<fn(i64) -> Value> = match ty {
            ColumnType::Int => Some(Value::Int),
            ColumnType::Timestamp => Some(Value::Timestamp),
            _ => None,
        };
        let rows: Vec<usize> = match probe {
            Some(mk) if sorted => {
                let lo =
                    col.partition_point(|c| c.total_cmp(&mk(from)) == std::cmp::Ordering::Less);
                let hi = col.partition_point(|c| c.total_cmp(&mk(to)) == std::cmp::Ordering::Less);
                (lo..hi).collect()
            }
            _ => col
                .iter()
                .enumerate()
                .filter(|(_, v)| v.as_i64().map(|t| t >= from && t < to).unwrap_or(false))
                .map(|(i, _)| i)
                .collect(),
        };
        self.gather(self.name(), &rows)
    }

    /// Fixed-window aggregation: buckets rows by `time_col / window_us`,
    /// aggregates `value_col` per bucket, and returns `(bucket_start_us,
    /// aggregate)` pairs in time order. Rows with null time or value are
    /// skipped. This is the workhorse behind every per-interval figure.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] for missing columns; [`DbError::BadQuery`]
    /// if `window_us` is not positive.
    pub fn window_agg(
        &self,
        time_col: &str,
        window_us: i64,
        value_col: &str,
        agg: AggFn,
    ) -> Result<Vec<(i64, f64)>, DbError> {
        if window_us <= 0 {
            return Err(DbError::BadQuery("window must be positive".into()));
        }
        let tci = self
            .schema()
            .index_of(time_col)
            .ok_or_else(|| DbError::NoSuchColumn(time_col.into()))?;
        let vci = self
            .schema()
            .index_of(value_col)
            .ok_or_else(|| DbError::NoSuchColumn(value_col.into()))?;
        let (tcol, vcol) = (self.col(tci), self.col(vci));
        let n = self.row_count();
        let block_rows = self.table_index().block_rows();
        let nblocks = n.div_ceil(block_rows);
        // Per-block partial buckets merged in block order: each bucket's
        // value vector ends up in exactly row order, so Mean/Sum addition
        // order and Last semantics are identical for any worker count.
        // BTreeMap (not HashMap) so bucket iteration order is the key
        // order by construction — hash order must never reach output.
        let partials = engine::scan_blocks(nblocks, engine::resolve_workers(0, n), |b| {
            let (s, e) = (b * block_rows, ((b + 1) * block_rows).min(n));
            let mut local: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
            for i in s..e {
                let (Some(t), Some(v)) = (tcol[i].as_i64(), vcol[i].as_f64()) else {
                    continue;
                };
                local
                    .entry(t.div_euclid(window_us) * window_us)
                    .or_default()
                    .push(v);
            }
            local
        });
        let mut buckets: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        for p in partials {
            for (k, mut vs) in p {
                buckets.entry(k).or_default().append(&mut vs);
            }
        }
        // BTreeMap iteration is already bucket-key order — no final sort.
        Ok(buckets
            .into_iter()
            .filter_map(|(k, vs)| fold(agg, &vs).map(|v| (k, v)))
            .collect())
    }

    /// Fused filter + fixed-window aggregation: equivalent to
    /// `self.filter(pred).window_agg(time_col, window_us, value_col, agg)`
    /// but computes the matching row set once on the compiled engine and
    /// never materializes the filtered table. Returns the number of
    /// matching rows alongside the series (so callers can distinguish "no
    /// rows matched" from "rows matched but none were numeric").
    ///
    /// # Errors
    ///
    /// Same as [`Table::window_agg`].
    pub fn window_agg_where(
        &self,
        pred: &Predicate,
        time_col: &str,
        window_us: i64,
        value_col: &str,
        agg: AggFn,
    ) -> Result<(usize, Vec<(i64, f64)>), DbError> {
        if window_us <= 0 {
            return Err(DbError::BadQuery("window must be positive".into()));
        }
        let tci = self
            .schema()
            .index_of(time_col)
            .ok_or_else(|| DbError::NoSuchColumn(time_col.into()))?;
        let vci = self
            .schema()
            .index_of(value_col)
            .ok_or_else(|| DbError::NoSuchColumn(value_col.into()))?;
        let (tcol, vcol) = (self.col(tci), self.col(vci));
        let rows = CompiledPredicate::compile(self, pred).matching_rows_with(0);
        // BTreeMap so bucket emission is key-ordered by construction.
        let mut buckets: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        for &i in &rows {
            let (Some(t), Some(v)) = (tcol[i].as_i64(), vcol[i].as_f64()) else {
                continue;
            };
            buckets
                .entry(t.div_euclid(window_us) * window_us)
                .or_default()
                .push(v);
        }
        let out: Vec<(i64, f64)> = buckets
            .into_iter()
            .filter_map(|(k, vs)| fold(agg, &vs).map(|v| (k, v)))
            .collect();
        Ok((rows.len(), out))
    }

    /// Hash inner join on `self.left_col == other.right_col`. Output columns
    /// are all of `self`'s followed by all of `other`'s; a name collision on
    /// the right side is prefixed with `<other-table>_`. Null keys never
    /// match.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] if either key column is missing.
    pub fn inner_join(
        &self,
        other: &Table,
        left_col: &str,
        right_col: &str,
    ) -> Result<Table, DbError> {
        let (lci, rci, schema) = self.join_parts(other, left_col, right_col)?;
        // Stats-driven build side: hash the smaller input, probe the
        // larger ([`crate::vector::join_pairs`] restores left-major
        // output order either way), then materialize the output with one
        // typed per-column gather instead of a row-at-a-time cell walk.
        let build_left = self.row_count() < other.row_count();
        let lsel: Vec<usize> = (0..self.row_count()).collect();
        let rsel: Vec<usize> = (0..other.row_count()).collect();
        let pairs =
            crate::vector::join_pairs(self.col(lci), &lsel, other.col(rci), &rsel, build_left);
        let mut srcs: Vec<(Side, &[Value])> = Vec::with_capacity(schema.len());
        for ci in 0..self.schema().len() {
            srcs.push((Side::Left, self.col(ci)));
        }
        for ci in 0..other.schema().len() {
            srcs.push((Side::Right, other.col(ci)));
        }
        let cols = crate::vector::gather_pair_cols(&srcs, &pairs, 0);
        Ok(Table::from_parts(
            format!("{}_x_{}", self.name(), other.name()),
            schema,
            cols,
        ))
    }

    /// Reference oracle: the original join that rebuilds a
    /// [`ValueKey`]-keyed hash map and clones a key per probe. Kept for
    /// property tests and benchmarks; result-identical to
    /// [`Table::inner_join`].
    ///
    /// # Errors
    ///
    /// Same as [`Table::inner_join`].
    pub fn inner_join_naive(
        &self,
        other: &Table,
        left_col: &str,
        right_col: &str,
    ) -> Result<Table, DbError> {
        let (lci, rci, schema) = self.join_parts(other, left_col, right_col)?;
        let mut index: HashMap<ValueKey, Vec<usize>> = HashMap::new();
        for (i, v) in other.col(rci).iter().enumerate() {
            if !v.is_null() {
                index.entry(v.key()).or_default().push(i);
            }
        }
        let left_width = self.schema().len();
        let mut cols: Vec<Vec<Value>> = vec![Vec::new(); schema.len()];
        for (li, lv) in self.col(lci).iter().enumerate() {
            if lv.is_null() {
                continue;
            }
            let Some(matches) = index.get(&lv.key()) else {
                continue;
            };
            for &ri in matches {
                for (ci, out) in cols.iter_mut().enumerate() {
                    let cell = if ci < left_width {
                        &self.col(ci)[li]
                    } else {
                        &other.col(ci - left_width)[ri]
                    };
                    // perf: reference oracle — kept byte-identical to the
                    // compiled join, including its owned-output clones.
                    out.push(cell.clone());
                }
            }
        }
        Ok(Table::from_parts(
            format!("{}_x_{}", self.name(), other.name()),
            schema,
            cols,
        ))
    }

    /// Shared join front: resolves both key columns and builds the output
    /// schema (right-side name collisions prefixed with the right table's
    /// name).
    fn join_parts(
        &self,
        other: &Table,
        left_col: &str,
        right_col: &str,
    ) -> Result<(usize, usize, Schema), DbError> {
        let lci = self
            .schema()
            .index_of(left_col)
            .ok_or_else(|| DbError::NoSuchColumn(left_col.into()))?;
        let rci = other
            .schema()
            .index_of(right_col)
            .ok_or_else(|| DbError::NoSuchColumn(right_col.into()))?;
        let mut columns = self.schema().columns().to_vec();
        for c in other.schema().columns() {
            let name = if self.schema().index_of(&c.name).is_some() {
                // perf: output-schema construction — once per join, bounded
                // by column count, never by row count.
                format!("{}_{}", other.name(), c.name)
            } else {
                // perf: same — one owned name per output column.
                c.name.clone()
            };
            columns.push(Column::new(name, c.ty));
        }
        let schema = Schema::new(columns).map_err(|_| {
            DbError::BadQuery(format!(
                "join of {} and {} produces duplicate column names",
                self.name(),
                other.name()
            ))
        })?;
        Ok((lci, rci, schema))
    }

    /// Sorts rows by a column (stable).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] if `col` is missing.
    pub fn order_by(&self, col: &str, ascending: bool) -> Result<Table, DbError> {
        let ci = self
            .schema()
            .index_of(col)
            .ok_or_else(|| DbError::NoSuchColumn(col.into()))?;
        let keys = self.col(ci);
        let mut order: Vec<usize> = (0..self.row_count()).collect();
        order.sort_by(|&a, &b| {
            let o = keys[a].total_cmp(&keys[b]);
            if ascending {
                o
            } else {
                o.reverse()
            }
        });
        Ok(self.gather(self.name(), &order))
    }

    /// Groups rows by `key_col` and aggregates `value_col` per group;
    /// returns a two-column table `(key, value)` sorted by key.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchColumn`] for missing columns.
    pub fn group_by(&self, key_col: &str, value_col: &str, agg: AggFn) -> Result<Table, DbError> {
        let kci = self
            .schema()
            .index_of(key_col)
            .ok_or_else(|| DbError::NoSuchColumn(key_col.into()))?;
        let vci = self
            .schema()
            .index_of(value_col)
            .ok_or_else(|| DbError::NoSuchColumn(value_col.into()))?;
        // Tolerate key_col == value_col (e.g. COUNT over the key itself) by
        // renaming the key column.
        let key_name = if key_col == value_col {
            format!("{key_col}_key")
        } else {
            key_col.to_string()
        };
        let schema = Schema::new(vec![
            Column::new(key_name, ColumnType::Text),
            Column::new(value_col, ColumnType::Float),
        ])?;
        // One pass through the vectorized batch aggregator: borrowed
        // keys, streaming accumulators, deterministic key-sorted output.
        let rows: Vec<usize> = (0..self.row_count()).collect();
        Ok(crate::vector::aggregate(
            &[self.col(kci)],
            &[(agg, Some(self.col(vci)))],
            &rows,
            false,
            &format!("{}_by_{key_col}", self.name()),
            &schema,
        ))
    }

    /// Borrowed numeric view of a column: lazily yields each value
    /// [`Value::as_f64`] accepts, skipping nulls/non-numerics, without
    /// materializing an intermediate `Vec`. A missing column yields
    /// nothing.
    pub fn numeric_values<'a>(&'a self, col: &str) -> impl Iterator<Item = f64> + 'a {
        self.column(col)
            .unwrap_or(&[])
            .iter()
            .filter_map(Value::as_f64)
    }

    /// Extracts a numeric column as `f64`s, skipping nulls/non-numerics.
    /// Prefer [`Table::numeric_values`] when a single streaming pass
    /// suffices — this materializes.
    pub fn numeric_column(&self, col: &str) -> Vec<f64> {
        self.numeric_values(col).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("t", ColumnType::Int),
            Column::new("node", ColumnType::Text),
            Column::new("util", ColumnType::Float),
        ])
        .unwrap();
        let mut t = Table::new("disk", schema);
        for (time, node, util) in [
            (0i64, "db", 10.0),
            (50, "db", 95.0),
            (100, "db", 99.0),
            (0, "web", 5.0),
            (50, "web", 6.0),
            (100, "web", 4.0),
        ] {
            t.push_row(vec![
                Value::Int(time),
                Value::Text(node.into()),
                Value::Float(util),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn filter_and_select() {
        let t = sample_table();
        let db = t.filter(&Predicate::Eq("node".into(), Value::Text("db".into())));
        assert_eq!(db.row_count(), 3);
        let high = t.filter(&Predicate::Gt("util".into(), Value::Float(50.0)));
        assert_eq!(high.row_count(), 2);
        let proj = t
            .select(
                &["util", "t"],
                &Predicate::Eq("node".into(), Value::Text("web".into())),
            )
            .unwrap();
        assert_eq!(proj.schema().columns()[0].name, "util");
        assert_eq!(proj.row_count(), 3);
        assert!(t.select(&["missing"], &Predicate::True).is_err());
    }

    #[test]
    fn predicate_combinators() {
        let t = sample_table();
        let p = Predicate::And(vec![
            Predicate::Eq("node".into(), Value::Text("db".into())),
            Predicate::Between("t".into(), Value::Int(0), Value::Int(100)),
        ]);
        assert_eq!(t.filter(&p).row_count(), 2);
        let q = Predicate::Or(vec![
            Predicate::Lt("util".into(), Value::Float(5.5)),
            Predicate::Ge("util".into(), Value::Float(99.0)),
        ]);
        assert_eq!(t.filter(&q).row_count(), 3);
        let n = Predicate::Not(Box::new(Predicate::Eq(
            "node".into(),
            Value::Text("db".into()),
        )));
        assert_eq!(t.filter(&n).row_count(), 3);
        // Missing column → false, not error.
        assert_eq!(
            t.filter(&Predicate::Eq("zzz".into(), Value::Int(1)))
                .row_count(),
            0
        );
    }

    #[test]
    fn time_range_half_open() {
        let t = sample_table();
        assert_eq!(t.time_range("t", 0, 100).row_count(), 4);
        assert_eq!(t.time_range("t", 50, 101).row_count(), 4);
    }

    #[test]
    fn window_agg_buckets() {
        let t = sample_table();
        let series = t.window_agg("t", 100, "util", AggFn::Max).unwrap();
        assert_eq!(series, vec![(0, 95.0), (100, 99.0)]);
        let counts = t.window_agg("t", 100, "util", AggFn::Count).unwrap();
        assert_eq!(counts, vec![(0, 4.0), (100, 2.0)]);
        assert!(t.window_agg("t", 0, "util", AggFn::Max).is_err());
        assert!(t.window_agg("nope", 10, "util", AggFn::Max).is_err());
    }

    #[test]
    fn window_agg_all_fns() {
        let t = sample_table();
        let mean = t.window_agg("t", 1000, "util", AggFn::Mean).unwrap();
        assert!((mean[0].1 - 36.5).abs() < 1e-9);
        let min = t.window_agg("t", 1000, "util", AggFn::Min).unwrap();
        assert_eq!(min[0].1, 4.0);
        let sum = t.window_agg("t", 1000, "util", AggFn::Sum).unwrap();
        assert!((sum[0].1 - 219.0).abs() < 1e-9);
        let last = t.window_agg("t", 1000, "util", AggFn::Last).unwrap();
        assert_eq!(last[0].1, 4.0);
    }

    #[test]
    fn inner_join_matches_keys() {
        let t = sample_table();
        let mut names = Table::new(
            "names",
            Schema::new(vec![
                Column::new("node", ColumnType::Text),
                Column::new("tier", ColumnType::Int),
            ])
            .unwrap(),
        );
        names
            .push_rows(vec![
                vec![Value::Text("db".into()), Value::Int(3)],
                vec![Value::Text("app".into()), Value::Int(1)],
            ])
            .unwrap();
        let joined = t.inner_join(&names, "node", "node").unwrap();
        assert_eq!(joined.row_count(), 3, "only db rows match");
        // Collided column is prefixed.
        assert!(joined.schema().index_of("names_node").is_some());
        assert!(joined.schema().index_of("tier").is_some());
        assert!(t.inner_join(&names, "nope", "node").is_err());
    }

    #[test]
    fn join_skips_null_keys() {
        let schema = Schema::new(vec![Column::new("k", ColumnType::Int)]).unwrap();
        let mut a = Table::new("a", schema.clone());
        a.push_rows(vec![vec![Value::Null], vec![Value::Int(1)]])
            .unwrap();
        let mut b = Table::new("b", schema);
        b.push_rows(vec![vec![Value::Null], vec![Value::Int(1)]])
            .unwrap();
        let j = a.inner_join(&b, "k", "k").unwrap();
        assert_eq!(j.row_count(), 1);
    }

    #[test]
    fn order_by_both_directions() {
        let t = sample_table();
        let asc = t.order_by("util", true).unwrap();
        assert_eq!(asc.cell(0, "util"), Some(&Value::Float(4.0)));
        let desc = t.order_by("util", false).unwrap();
        assert_eq!(desc.cell(0, "util"), Some(&Value::Float(99.0)));
        assert!(t.order_by("zzz", true).is_err());
    }

    #[test]
    fn group_by_aggregates() {
        let t = sample_table();
        let g = t.group_by("node", "util", AggFn::Max).unwrap();
        assert_eq!(g.row_count(), 2);
        // Sorted by key: db before web.
        assert_eq!(g.cell(0, "node"), Some(&Value::Text("db".into())));
        assert_eq!(g.cell(0, "util"), Some(&Value::Float(99.0)));
        assert_eq!(g.cell(1, "util"), Some(&Value::Float(6.0)));
        assert!(t.group_by("zzz", "util", AggFn::Max).is_err());
    }

    #[test]
    fn numeric_column_skips_non_numeric() {
        let t = sample_table();
        assert_eq!(t.numeric_column("util").len(), 6);
        assert_eq!(t.numeric_column("node").len(), 0);
        assert_eq!(t.numeric_column("missing").len(), 0);
    }
}
