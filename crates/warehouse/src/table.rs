//! Schemas and columnar tables.

use crate::engine::{TableIndex, DEFAULT_BLOCK_ROWS};
use crate::value::{ColumnType, Value};
use crate::DbError;
use std::fmt;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type per the inference lattice.
    pub ty: ColumnType,
}
mscope_serdes::json_struct!(Column { name, ty });

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}
mscope_serdes::json_struct!(Schema { columns });

impl Schema {
    /// Builds a schema from columns.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::DuplicateColumn`] if two columns share a name.
    pub fn new(columns: Vec<Column>) -> Result<Schema, DbError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DbError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Widens `column`'s type to also admit `ty` (lattice join); adds the
    /// column with type `ty` if it does not exist. Returns the column index.
    pub fn accommodate(&mut self, name: &str, ty: ColumnType) -> usize {
        match self.index_of(name) {
            Some(i) => {
                self.columns[i].ty = self.columns[i].ty.unify(ty);
                i
            }
            None => {
                self.columns.push(Column::new(name, ty));
                self.columns.len() - 1
            }
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

/// A columnar table: the unit of storage in mScopeDB.
///
/// # Examples
///
/// ```
/// use mscope_db::{Column, ColumnType, Schema, Table, Value};
///
/// let schema = Schema::new(vec![
///     Column::new("t", ColumnType::Int),
///     Column::new("util", ColumnType::Float),
/// ])?;
/// let mut table = Table::new("disk", schema);
/// table.push_row(vec![Value::Int(0), Value::Float(12.5)])?;
/// table.push_row(vec![Value::Int(50), Value::Float(99.0)])?;
/// assert_eq!(table.row_count(), 2);
/// # Ok::<(), mscope_db::DbError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Column-major storage; all columns have equal length.
    cols: Vec<Vec<Value>>,
    /// Zone maps + sorted flags, maintained incrementally on append.
    /// Derived from `cols` — excluded from equality and serialization.
    index: TableIndex,
}

impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        self.name == other.name && self.schema == other.schema && self.cols == other.cols
    }
}

// Hand-written (not `json_struct!`) because `index` is derived state:
// the wire format stays exactly `{name, schema, cols}` and the index is
// rebuilt on load.
impl mscope_serdes::ToJson for Table {
    fn to_json(&self) -> mscope_serdes::Json {
        mscope_serdes::Json::Obj(vec![
            (
                "name".to_string(),
                mscope_serdes::ToJson::to_json(&self.name),
            ),
            (
                "schema".to_string(),
                mscope_serdes::ToJson::to_json(&self.schema),
            ),
            (
                "cols".to_string(),
                mscope_serdes::ToJson::to_json(&self.cols),
            ),
        ])
    }
}

impl mscope_serdes::FromJson for Table {
    fn from_json(v: &mscope_serdes::Json) -> Result<Self, mscope_serdes::JsonError> {
        let name: String = mscope_serdes::field(v, "name")?;
        let schema: Schema = mscope_serdes::field(v, "schema")?;
        let cols: Vec<Vec<Value>> = mscope_serdes::field(v, "cols")?;
        let index = TableIndex::build(&schema, &cols, DEFAULT_BLOCK_ROWS);
        Ok(Table {
            name,
            schema,
            cols,
            index,
        })
    }
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        let cols = vec![Vec::new(); schema.len()];
        let index = TableIndex::new(&schema, DEFAULT_BLOCK_ROWS);
        Table {
            name: name.into(),
            schema,
            cols,
            index,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count() == 0
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// [`DbError::Arity`] if the row width differs from the schema;
    /// [`DbError::TypeMismatch`] if a value is not admitted by its column's
    /// type.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), DbError> {
        if row.len() != self.schema.len() {
            return Err(DbError::Arity {
                table: self.name.clone(),
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (v, c) in row.iter().zip(self.schema.columns()) {
            if !c.ty.admits(v.column_type()) {
                return Err(DbError::TypeMismatch {
                    table: self.name.clone(),
                    column: c.name.clone(),
                    expected: c.ty,
                    got: v.column_type(),
                });
            }
        }
        for (ci, (col, v)) in self.cols.iter_mut().zip(row).enumerate() {
            self.index.note(ci, col.last(), &v);
            col.push(v);
        }
        Ok(())
    }

    /// Appends many rows; stops at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Table::push_row`] error.
    pub fn push_rows<I>(&mut self, rows: I) -> Result<(), DbError>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        for r in rows {
            self.push_row(r)?;
        }
        Ok(())
    }

    /// Appends a batch of rows all-or-nothing: every row is validated
    /// (arity and column types) *before* anything is appended, then the
    /// columns are extended in one pass with storage reserved up front.
    /// Returns the number of rows appended.
    ///
    /// This is the bulk-load path the Data Importer uses: one schema walk
    /// per batch instead of one per row, and no partially loaded table on
    /// error.
    ///
    /// # Errors
    ///
    /// [`DbError::Arity`] or [`DbError::TypeMismatch`] for the first
    /// offending row; the table is unchanged in that case.
    pub fn push_batch(&mut self, rows: Vec<Vec<Value>>) -> Result<usize, DbError> {
        for row in &rows {
            if row.len() != self.schema.len() {
                return Err(DbError::Arity {
                    table: self.name.clone(),
                    expected: self.schema.len(),
                    got: row.len(),
                });
            }
            for (v, c) in row.iter().zip(self.schema.columns()) {
                if !c.ty.admits(v.column_type()) {
                    return Err(DbError::TypeMismatch {
                        table: self.name.clone(),
                        column: c.name.clone(),
                        expected: c.ty,
                        got: v.column_type(),
                    });
                }
            }
        }
        let n = rows.len();
        for col in &mut self.cols {
            col.reserve(n);
        }
        for row in rows {
            for (ci, (col, v)) in self.cols.iter_mut().zip(row).enumerate() {
                self.index.note(ci, col.last(), &v);
                col.push(v);
            }
        }
        Ok(n)
    }

    /// A full column by name.
    pub fn column(&self, name: &str) -> Option<&[Value]> {
        self.schema.index_of(name).map(|i| self.cols[i].as_slice())
    }

    /// One cell.
    pub fn cell(&self, row: usize, col: &str) -> Option<&Value> {
        let ci = self.schema.index_of(col)?;
        self.cols[ci].get(row)
    }

    /// Materializes row `i` (clones the values).
    pub fn row(&self, i: usize) -> Option<Vec<Value>> {
        if i >= self.row_count() {
            return None;
        }
        Some(self.cols.iter().map(|c| c[i].clone()).collect())
    }

    /// Iterates over materialized rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.row_count()).map(|i| self.row(i).expect("index in range"))
    }

    /// Builds a new table with the same schema containing the given row
    /// indices (used by the query layer).
    pub(crate) fn gather(&self, name: &str, rows: &[usize]) -> Table {
        let cols: Vec<Vec<Value>> = self
            .cols
            .iter()
            .map(|c| rows.iter().map(|&i| c[i].clone()).collect())
            .collect();
        let index = TableIndex::build(&self.schema, &cols, self.index.block_rows());
        Table {
            name: name.to_string(),
            schema: self.schema.clone(),
            cols,
            index,
        }
    }

    /// Internal constructor from parts (query layer).
    pub(crate) fn from_parts(name: String, schema: Schema, cols: Vec<Vec<Value>>) -> Table {
        debug_assert_eq!(schema.len(), cols.len());
        debug_assert!(cols.windows(2).all(|w| w[0].len() == w[1].len()));
        let index = TableIndex::build(&schema, &cols, DEFAULT_BLOCK_ROWS);
        Table {
            name,
            schema,
            cols,
            index,
        }
    }

    /// Column `ci` by index (query engine's typed-slice access).
    pub(crate) fn col(&self, ci: usize) -> &[Value] {
        &self.cols[ci]
    }

    /// Decomposes the table into its owned parts — the inverse of
    /// [`Table::from_parts`], letting same-crate callers rebuild a
    /// reshaped table without copying any cell data.
    pub(crate) fn into_parts(self) -> (String, Schema, Vec<Vec<Value>>) {
        (self.name, self.schema, self.cols)
    }

    /// The table's block metadata (zone maps + sorted flags).
    pub(crate) fn table_index(&self) -> &TableIndex {
        &self.index
    }

    /// Rebuilds the block metadata with `block_rows` rows per zone-map
    /// block (clamped to ≥ 1). Queries are result-identical for any block
    /// size; this is a tuning/testing knob — the default is
    /// [`DEFAULT_BLOCK_ROWS`](crate::DEFAULT_BLOCK_ROWS).
    pub fn reindex(&mut self, block_rows: usize) {
        self.index = TableIndex::build(&self.schema, &self.cols, block_rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Schema {
        Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("b", ColumnType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(vec![
            Column::new("x", ColumnType::Int),
            Column::new("x", ColumnType::Text),
        ])
        .unwrap_err();
        assert!(matches!(err, DbError::DuplicateColumn(_)));
    }

    #[test]
    fn schema_accommodate_widens_and_appends() {
        let mut s = schema2();
        assert_eq!(s.accommodate("a", ColumnType::Float), 0);
        assert_eq!(s.columns()[0].ty, ColumnType::Float);
        assert_eq!(s.accommodate("c", ColumnType::Bool), 2);
        assert_eq!(s.len(), 3);
        // Text is sticky (top of lattice).
        s.accommodate("b", ColumnType::Int);
        assert_eq!(s.columns()[1].ty, ColumnType::Text);
    }

    #[test]
    fn push_and_read_rows() {
        let mut t = Table::new("t", schema2());
        t.push_row(vec![Value::Int(1), Value::Text("x".into())])
            .unwrap();
        t.push_row(vec![Value::Null, Value::Text("y".into())])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.cell(0, "a"), Some(&Value::Int(1)));
        assert_eq!(
            t.cell(1, "a"),
            Some(&Value::Null),
            "null admitted everywhere"
        );
        assert_eq!(t.column("b").unwrap().len(), 2);
        assert_eq!(t.row(1).unwrap()[1], Value::Text("y".into()));
        assert_eq!(t.row(5), None);
        assert_eq!(t.iter_rows().count(), 2);
    }

    #[test]
    fn push_batch_is_all_or_nothing() {
        let mut t = Table::new("t", schema2());
        let n = t
            .push_batch(vec![
                vec![Value::Int(1), Value::Text("x".into())],
                vec![Value::Null, Value::Text("y".into())],
            ])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.row_count(), 2);
        // A bad row anywhere in the batch leaves the table untouched.
        let err = t.push_batch(vec![
            vec![Value::Int(2), Value::Text("z".into())],
            vec![Value::Float(0.5), Value::Text("w".into())],
        ]);
        assert!(matches!(err, Err(DbError::TypeMismatch { .. })));
        assert_eq!(t.row_count(), 2, "nothing half-loaded");
        assert!(matches!(
            t.push_batch(vec![vec![Value::Int(3)]]),
            Err(DbError::Arity { .. })
        ));
        assert_eq!(t.push_batch(Vec::new()).unwrap(), 0);
    }

    #[test]
    fn arity_and_type_checked() {
        let mut t = Table::new("t", schema2());
        assert!(matches!(
            t.push_row(vec![Value::Int(1)]),
            Err(DbError::Arity { .. })
        ));
        assert!(matches!(
            t.push_row(vec![Value::Float(1.5), Value::Text("x".into())]),
            Err(DbError::TypeMismatch { .. })
        ));
        // Int into a Float column is fine.
        let mut t2 = Table::new(
            "t2",
            Schema::new(vec![Column::new("f", ColumnType::Float)]).unwrap(),
        );
        t2.push_row(vec![Value::Int(3)]).unwrap();
    }

    #[test]
    fn schema_display() {
        assert_eq!(schema2().to_string(), "(a int, b text)");
    }
}

impl Table {
    /// Renders the table as aligned text for terminals: header row,
    /// separator, then up to `max_rows` data rows (0 = all), with a
    /// truncation note if rows were omitted.
    pub fn render_text(&self, max_rows: usize) -> String {
        let headers: Vec<String> = self
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let shown = if max_rows == 0 {
            self.row_count()
        } else {
            self.row_count().min(max_rows)
        };
        let rendered: Vec<Vec<String>> = (0..shown)
            .map(|i| {
                self.row(i)
                    .expect("row in range")
                    .iter()
                    .map(|v| v.render())
                    .collect()
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        use std::fmt::Write as _;
        let line_width: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 1;
        let mut out = String::with_capacity(line_width * (shown + 3));
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = *w);
            }
            out.push('\n');
        };
        write_row(&mut out, &headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(&mut out, &sep);
        for row in &rendered {
            write_row(&mut out, row);
        }
        if shown < self.row_count() {
            let _ = writeln!(out, "… {} more rows", self.row_count() - shown);
        }
        out
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;

    #[test]
    fn render_text_aligns_and_truncates() {
        let schema = Schema::new(vec![
            Column::new("node", ColumnType::Text),
            Column::new("util", ColumnType::Float),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        for i in 0..5 {
            t.push_row(vec![
                Value::Text(format!("tier{i}-0")),
                Value::Float(i as f64 * 10.0),
            ])
            .unwrap();
        }
        let text = t.render_text(3);
        assert!(text.starts_with("   node  util\n"));
        assert!(text.contains("-----"));
        assert!(text.contains("… 2 more rows"));
        assert_eq!(text.lines().count(), 2 + 3 + 1);
        let full = t.render_text(0);
        assert!(!full.contains("more rows"));
        assert_eq!(full.lines().count(), 2 + 5);
    }
}

impl Table {
    /// Per-column exploration summary: a new table with one row per column
    /// of `self`, listing type, row count, nulls, distinct values, and (for
    /// numeric columns) min/max/mean — the first thing a researcher asks of
    /// an unfamiliar monitor table.
    pub fn describe(&self) -> Table {
        let schema = Schema::new(vec![
            Column::new("column", ColumnType::Text),
            Column::new("type", ColumnType::Text),
            Column::new("rows", ColumnType::Int),
            Column::new("nulls", ColumnType::Int),
            Column::new("distinct", ColumnType::Int),
            Column::new("min", ColumnType::Float),
            Column::new("max", ColumnType::Float),
            Column::new("mean", ColumnType::Float),
        ])
        .expect("static schema is valid");
        let mut out = Table::new(format!("{}_describe", self.name), schema);
        for col in self.schema.columns() {
            let values = self.column(&col.name).expect("column listed in schema");
            let nulls = values.iter().filter(|v| v.is_null()).count();
            let distinct = {
                let mut keys: Vec<crate::value::ValueKey> = values.iter().map(Value::key).collect();
                // perf: one sort per described column — distinct-counting
                // needs any total order, and `ValueKey: Ord` is direct.
                keys.sort_unstable();
                keys.dedup();
                keys.len()
            };
            // Single streaming pass over the numeric view — no
            // intermediate `Vec<f64>`; fold order matches the old
            // collect-then-fold shape bit for bit (row order).
            let (mut n, mut sum) = (0usize, 0.0f64);
            let (mut mn, mut mx) = (f64::INFINITY, f64::NEG_INFINITY);
            for v in values.iter().filter_map(Value::as_f64) {
                n += 1;
                sum += v;
                mn = mn.min(v);
                mx = mx.max(v);
            }
            let (min, max, mean) = if n == 0 {
                (Value::Null, Value::Null, Value::Null)
            } else {
                (
                    Value::Float(mn),
                    Value::Float(mx),
                    Value::Float(sum / n as f64),
                )
            };
            // perf: describe emits one owned row per column — bounded by
            // schema width, never by row count.
            out.push_row(vec![
                Value::Text(col.name.clone()),
                Value::Text(col.ty.to_string()),
                Value::Int(values.len() as i64),
                Value::Int(nulls as i64),
                Value::Int(distinct as i64),
                min,
                max,
                mean,
            ])
            .expect("describe rows match the static schema");
        }
        out
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;

    #[test]
    fn describe_summarizes_each_column() {
        let schema = Schema::new(vec![
            Column::new("t", ColumnType::Int),
            Column::new("name", ColumnType::Text),
        ])
        .unwrap();
        let mut t = Table::new("m", schema);
        for i in 0..10 {
            t.push_row(vec![
                Value::Int(i),
                if i % 2 == 0 {
                    Value::Text("a".into())
                } else {
                    Value::Null
                },
            ])
            .unwrap();
        }
        let d = t.describe();
        assert_eq!(d.row_count(), 2);
        assert_eq!(d.cell(0, "column"), Some(&Value::Text("t".into())));
        assert_eq!(d.cell(0, "rows"), Some(&Value::Int(10)));
        assert_eq!(d.cell(0, "nulls"), Some(&Value::Int(0)));
        assert_eq!(d.cell(0, "distinct"), Some(&Value::Int(10)));
        assert_eq!(d.cell(0, "min"), Some(&Value::Float(0.0)));
        assert_eq!(d.cell(0, "max"), Some(&Value::Float(9.0)));
        assert_eq!(d.cell(0, "mean"), Some(&Value::Float(4.5)));
        // The text column: 5 nulls, 2 distinct (text + null), no numerics.
        assert_eq!(d.cell(1, "nulls"), Some(&Value::Int(5)));
        assert_eq!(d.cell(1, "distinct"), Some(&Value::Int(2)));
        assert_eq!(d.cell(1, "min"), Some(&Value::Null));
    }

    #[test]
    fn describe_empty_table() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Float)]).unwrap();
        let d = Table::new("empty", schema).describe();
        assert_eq!(d.row_count(), 1);
        assert_eq!(d.cell(0, "rows"), Some(&Value::Int(0)));
        assert_eq!(d.cell(0, "distinct"), Some(&Value::Int(0)));
    }
}
