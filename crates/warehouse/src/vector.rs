//! Vectorized columnar execution for planned queries.
//!
//! The planner ([`plan`](crate::plan)) lowers SQL into a [`Plan`]; this
//! module runs it over column batches and selection vectors instead of
//! materialized intermediate tables:
//!
//! * filtering produces **selection vectors** (row indices / join pairs),
//!   never an intermediate [`Table`] — operators exchange indices and the
//!   output columns are gathered exactly once, at the end;
//! * [`gather_sel`]/[`gather_pair_cols`] materialize output columns
//!   whole-column-at-a-time, parallelized across columns over the shared
//!   [`scan_blocks`](crate::engine) pool with the established
//!   deterministic merge (each output column is an independent job);
//! * [`join_pairs`] is build-side aware: the planner hashes whichever
//!   input the statistics estimate smaller, and the output pair list is
//!   restored to left-major order either way;
//! * [`aggregate`] folds COUNT/SUM/MIN/MAX/AVG accumulators in one pass
//!   over the typed slices, bit-identical to the legacy `fold` (same
//!   float operations in the same row order).
//!
//! Everything here is result-identical to the clause-by-clause
//! `optimize = false` path ([`run`] dispatches on the flag) and to the
//! `*_naive` oracles, which the property suites keep as identity gates.

use crate::engine::{self, CmpOp, CompiledPredicate, KeyRef};
use crate::plan::{Plan, Resolved, Side};
use crate::query::AggFn;
use crate::table::{Column, Schema, Table};
use crate::value::Value;
use crate::{DbError, Predicate};
use std::cmp::Ordering;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Columnar gather
// ---------------------------------------------------------------------

/// Gathers `sel` out of each column slice — one owned output column per
/// input slice, parallelized across columns (each column is an
/// independent job; `scan_blocks` merges in column order, so output is
/// byte-identical for any worker count).
pub(crate) fn gather_sel(cols: &[&[Value]], sel: &[usize], workers: usize) -> Vec<Vec<Value>> {
    let cells = cols.len().saturating_mul(sel.len());
    let workers = engine::resolve_workers(workers, cells);
    engine::scan_blocks(cols.len(), workers, |ci| {
        let src = cols[ci];
        sel.iter().map(|&i| src[i].clone()).collect()
    })
}

/// [`gather_sel`] over join pairs: each output column names the side its
/// cells come from, and every pair contributes one cell per column.
pub(crate) fn gather_pair_cols(
    cols: &[(Side, &[Value])],
    pairs: &[(usize, usize)],
    workers: usize,
) -> Vec<Vec<Value>> {
    let cells = cols.len().saturating_mul(pairs.len());
    let workers = engine::resolve_workers(workers, cells);
    engine::scan_blocks(cols.len(), workers, |ci| {
        let (side, src) = cols[ci];
        pairs
            .iter()
            .map(|&(li, ri)| {
                src[match side {
                    Side::Left => li,
                    Side::Right => ri,
                }]
                .clone()
            })
            .collect()
    })
}

// ---------------------------------------------------------------------
// Build-side-aware hash join over selection vectors
// ---------------------------------------------------------------------

/// Joins two selections on their key columns, hashing whichever side the
/// planner chose (`build_left`) with borrowed keys, and returns matching
/// `(left_row, right_row)` pairs in **left-major** order (left selection
/// order, then right selection order) regardless of build side. Null
/// keys never match.
pub(crate) fn join_pairs(
    lcol: &[Value],
    lsel: &[usize],
    rcol: &[Value],
    rsel: &[usize],
    build_left: bool,
) -> Vec<(usize, usize)> {
    // Probe-side length is the lower bound on the output when keys are
    // near-unique — the common request_id-style join shape.
    let mut out = Vec::with_capacity(if build_left { rsel.len() } else { lsel.len() });
    if build_left {
        let mut index: HashMap<KeyRef<'_>, Vec<usize>> = HashMap::new();
        for &li in lsel {
            if let Some(k) = KeyRef::of(&lcol[li]) {
                index.entry(k).or_default().push(li);
            }
        }
        for &ri in rsel {
            let Some(k) = KeyRef::of(&rcol[ri]) else {
                continue;
            };
            if let Some(ls) = index.get(&k) {
                for &li in ls {
                    out.push((li, ri));
                }
            }
        }
        // The probe ran right-major; the output contract is left-major.
        // Pairs are unique, so the unstable sort is deterministic.
        out.sort_unstable();
    } else {
        let mut index: HashMap<KeyRef<'_>, Vec<usize>> = HashMap::new();
        for &ri in rsel {
            if let Some(k) = KeyRef::of(&rcol[ri]) {
                index.entry(k).or_default().push(ri);
            }
        }
        for &li in lsel {
            let Some(k) = KeyRef::of(&lcol[li]) else {
                continue;
            };
            if let Some(rs) = index.get(&k) {
                for &ri in rs {
                    out.push((li, ri));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Residual predicates over join pairs
// ---------------------------------------------------------------------

/// A predicate leaf resolved to a side-tagged column slice.
enum PNode<'t> {
    True,
    /// Unknown column — false for every pair (the exploratory-filter
    /// semantics of [`CompiledPredicate`]).
    False,
    Cmp {
        side: Side,
        col: &'t [Value],
        op: CmpOp,
        v: Value,
    },
    Between {
        side: Side,
        col: &'t [Value],
        lo: Value,
        hi: Value,
    },
    And(Vec<PNode<'t>>),
    Or(Vec<PNode<'t>>),
    Not(Box<PNode<'t>>),
}

/// A predicate compiled against a join's *pair space*: columns resolved
/// to `(side, slice)` so mixed-side conjuncts (the residual the planner
/// could not push below the join) evaluate without materializing the
/// joined table.
pub(crate) struct PairPredicate<'t> {
    node: PNode<'t>,
}

impl<'t> PairPredicate<'t> {
    pub(crate) fn compile<F>(pred: &Predicate, resolve: &F) -> PairPredicate<'t>
    where
        F: Fn(&str) -> Option<(Side, &'t [Value])>,
    {
        PairPredicate {
            node: PNode::compile(pred, resolve),
        }
    }

    pub(crate) fn eval(&self, li: usize, ri: usize) -> bool {
        self.node.eval(li, ri)
    }
}

impl<'t> PNode<'t> {
    fn compile<F>(pred: &Predicate, resolve: &F) -> PNode<'t>
    where
        F: Fn(&str) -> Option<(Side, &'t [Value])>,
    {
        let leaf = |c: &str, op: CmpOp, v: &Value| match resolve(c) {
            None => PNode::False,
            Some((side, col)) => PNode::Cmp {
                side,
                col,
                op,
                v: v.clone(),
            },
        };
        match pred {
            Predicate::True => PNode::True,
            Predicate::Eq(c, v) => leaf(c, CmpOp::Eq, v),
            Predicate::Ne(c, v) => leaf(c, CmpOp::Ne, v),
            Predicate::Lt(c, v) => leaf(c, CmpOp::Lt, v),
            Predicate::Le(c, v) => leaf(c, CmpOp::Le, v),
            Predicate::Gt(c, v) => leaf(c, CmpOp::Gt, v),
            Predicate::Ge(c, v) => leaf(c, CmpOp::Ge, v),
            Predicate::Between(c, lo, hi) => match resolve(c) {
                None => PNode::False,
                Some((side, col)) => PNode::Between {
                    side,
                    col,
                    lo: lo.clone(),
                    hi: hi.clone(),
                },
            },
            Predicate::And(ps) => {
                PNode::And(ps.iter().map(|p| PNode::compile(p, resolve)).collect())
            }
            Predicate::Or(ps) => PNode::Or(ps.iter().map(|p| PNode::compile(p, resolve)).collect()),
            Predicate::Not(p) => PNode::Not(Box::new(PNode::compile(p, resolve))),
        }
    }

    fn eval(&self, li: usize, ri: usize) -> bool {
        match self {
            PNode::True => true,
            PNode::False => false,
            PNode::Cmp { side, col, op, v } => {
                let c = &col[match side {
                    Side::Left => li,
                    Side::Right => ri,
                }];
                !c.is_null() && op.ok(c.total_cmp(v))
            }
            PNode::Between { side, col, lo, hi } => {
                let c = &col[match side {
                    Side::Left => li,
                    Side::Right => ri,
                }];
                !c.is_null()
                    && c.total_cmp(lo) != Ordering::Less
                    && c.total_cmp(hi) == Ordering::Less
            }
            PNode::And(ns) => ns.iter().all(|n| n.eval(li, ri)),
            PNode::Or(ns) => ns.iter().any(|n| n.eval(li, ri)),
            PNode::Not(n) => !n.eval(li, ri),
        }
    }
}

// ---------------------------------------------------------------------
// Batch aggregation
// ---------------------------------------------------------------------

/// Streaming accumulator holding every statistic any [`AggFn`] finishes
/// from. One pass, fixed size — no per-group value vector.
#[derive(Clone, Copy)]
struct Acc {
    n: usize,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

impl Acc {
    const NEW: Acc = Acc {
        n: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
        last: 0.0,
    };

    /// Folds one numeric value. Operations and order match the legacy
    /// per-group `fold` exactly (left-fold sum from 0.0, `f64::min`/`max`
    /// from the infinities), so results are bit-identical.
    fn push(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
    }
}

/// Feeds one row's cell into an accumulator. `COUNT(*)` passes no cell
/// and counts the row; `COUNT(col)` counts non-null cells of any type
/// (SQL semantics); every other aggregate folds numeric cells only.
fn update(agg: AggFn, cell: Option<&Value>, acc: &mut Acc) {
    if agg == AggFn::Count {
        if cell.is_none_or(|c| !c.is_null()) {
            acc.n += 1;
        }
        return;
    }
    if let Some(v) = cell.and_then(Value::as_f64) {
        acc.push(v);
    }
}

/// Finishes an accumulator. `None` means "no value" — the row is dropped
/// (grouped, all aggregates `None`) or rendered `Null`. Whole-table SUM
/// over an empty input keeps its legacy `0.0`.
fn finish(agg: AggFn, a: Acc, whole_table: bool) -> Option<f64> {
    match agg {
        AggFn::Count => Some(a.n as f64),
        AggFn::Sum => {
            if a.n > 0 {
                Some(a.sum)
            } else if whole_table {
                Some(0.0)
            } else {
                None
            }
        }
        AggFn::Mean => (a.n > 0).then(|| a.sum / a.n as f64),
        AggFn::Min => (a.n > 0).then_some(a.min),
        AggFn::Max => (a.n > 0).then_some(a.max),
        AggFn::Last => (a.n > 0).then_some(a.last),
    }
}

/// Vectorized grouped/whole-table aggregation over a selection.
///
/// `keys` and the optional per-aggregate source slices are full columns;
/// `rows` is the selection to aggregate. Groups form in first-seen row
/// order (borrowed keys, no per-row clone), accumulate in one streaming
/// pass, then sort by their original key tuples — the stable sort keeps
/// first-seen order for cross-type numeric ties, so output is
/// deterministic regardless of hash-map internals. Rows with any null
/// key are skipped; a group whose every aggregate finishes `None` is
/// dropped (matching the legacy per-group fold); key cells render as
/// `Text`, aggregates as `Float`.
pub(crate) fn aggregate(
    keys: &[&[Value]],
    aggs: &[(AggFn, Option<&[Value]>)],
    rows: &[usize],
    whole_table: bool,
    name: &str,
    schema: &Schema,
) -> Table {
    if whole_table {
        let mut accs = vec![Acc::NEW; aggs.len()];
        for &i in rows {
            for ((agg, src), acc) in aggs.iter().zip(accs.iter_mut()) {
                update(*agg, src.map(|s| &s[i]), acc);
            }
        }
        let cols: Vec<Vec<Value>> = aggs
            .iter()
            .zip(&accs)
            .map(|(&(agg, _), &acc)| vec![finish(agg, acc, true).map_or(Value::Null, Value::Float)])
            .collect();
        return Table::from_parts(name.to_string(), schema.clone(), cols);
    }

    // Group discovery: borrowed key tuples index into `groups`, which
    // remembers each group's first row (for the owned key render and the
    // deterministic tie-break) alongside its accumulators.
    let mut ords: HashMap<Vec<KeyRef<'_>>, usize> = HashMap::new();
    let mut groups: Vec<(usize, Vec<Acc>)> = Vec::new();
    'rows: for &i in rows {
        let mut kr = Vec::with_capacity(keys.len());
        for k in keys {
            match KeyRef::of(&k[i]) {
                Some(x) => kr.push(x),
                // A null in any key column: the row never groups.
                None => continue 'rows,
            }
        }
        let ord = match ords.get(&kr) {
            Some(&o) => o,
            None => {
                // perf: one tiny accumulator vector per *distinct* group,
                // not per row.
                groups.push((i, vec![Acc::NEW; aggs.len()]));
                ords.insert(kr, groups.len() - 1);
                groups.len() - 1
            }
        };
        let accs = &mut groups[ord].1;
        for ((agg, src), acc) in aggs.iter().zip(accs.iter_mut()) {
            update(*agg, src.map(|s| &s[i]), acc);
        }
    }

    // Emit groups sorted by their original key tuples. The sort is
    // stable over first-seen order, so cross-type ties (Int 1 vs Float
    // 1.0) break deterministically — hash order never reaches output.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&ga, &gb| {
        let (ra, rb) = (groups[ga].0, groups[gb].0);
        let mut o = Ordering::Equal;
        for k in keys {
            o = k[ra].total_cmp(&k[rb]);
            if o != Ordering::Equal {
                break;
            }
        }
        o
    });

    let nkeys = keys.len();
    let mut cols: Vec<Vec<Value>> = vec![Vec::new(); schema.len()];
    for &g in &order {
        let (first, accs) = &groups[g];
        let vals: Vec<Option<f64>> = aggs
            .iter()
            .zip(accs)
            .map(|(&(agg, _), &acc)| finish(agg, acc, false))
            .collect();
        if vals.iter().all(Option::is_none) {
            continue;
        }
        for (k, col) in keys.iter().zip(cols.iter_mut()) {
            // Keys are stored in rendered text form so mixed-type key
            // columns stay queryable (legacy group_by contract).
            col.push(Value::Text(k[*first].render()));
        }
        for (v, col) in vals.iter().zip(cols[nkeys..].iter_mut()) {
            col.push(v.map_or(Value::Null, Value::Float));
        }
    }
    Table::from_parts(name.to_string(), schema.clone(), cols)
}

// ---------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------

/// Runs a plan: the optimized selection-vector pipeline when
/// `plan.optimize`, otherwise the clause-by-clause materializing shape
/// `Database::query` had before the planner (the ablation baseline).
/// Both produce byte-identical tables.
pub(crate) fn run(plan: &Plan<'_>, workers: usize) -> Result<Table, DbError> {
    if plan.optimize {
        run_optimized(plan, workers)
    } else {
        run_unoptimized(plan, workers)
    }
}

/// Side-tagged slice for a resolved source column. The planner only
/// resolves `Side::Right` columns when a join table exists; the empty
/// slice is an unreachable defensive fallback.
fn side_slice<'t>(
    res: &Resolved,
    left: &'t Table,
    right: Option<&'t Table>,
    si: usize,
) -> (Side, &'t [Value]) {
    let s = &res.source[si];
    let col = match s.side {
        Side::Left => left.col(s.ci),
        Side::Right => right.map_or(&[] as &[Value], |t| t.col(s.ci)),
    };
    (s.side, col)
}

fn run_optimized(plan: &Plan<'_>, workers: usize) -> Result<Table, DbError> {
    let res = &plan.res;
    let left = plan.left;
    let mut lsel = CompiledPredicate::compile(left, &plan.left_pred).matching_rows_with(workers);

    if let (Some(right), Some((lci, rci))) = (plan.right, res.join_keys) {
        let rsel = CompiledPredicate::compile(right, &plan.right_pred).matching_rows_with(workers);
        let mut pairs = join_pairs(left.col(lci), &lsel, right.col(rci), &rsel, plan.build_left);
        if plan.residual != Predicate::True {
            let resolve = |name: &str| {
                res.source
                    .iter()
                    .position(|s| s.name == name)
                    .map(|si| side_slice(res, left, Some(right), si))
            };
            let pp = PairPredicate::compile(&plan.residual, &resolve);
            pairs.retain(|&(li, ri)| pp.eval(li, ri));
        }

        if let Some(aggn) = &res.aggregate {
            // Projection pushdown: materialize only the key/aggregate
            // inputs, once, then stream over the batch.
            let cols: Vec<(Side, &[Value])> = plan
                .needed
                .iter()
                .map(|&si| side_slice(res, left, Some(right), si))
                .collect();
            let mat = gather_pair_cols(&cols, &pairs, workers);
            // The planner builds `needed` as the union of key and
            // aggregate inputs, so the lookup always hits; the default
            // is an unreachable defensive fallback.
            let pos = |si: usize| {
                plan.needed
                    .iter()
                    .position(|&x| x == si)
                    .unwrap_or_default()
            };
            let keys: Vec<&[Value]> = aggn
                .keys
                .iter()
                .map(|&si| mat[pos(si)].as_slice())
                .collect();
            let aggs: Vec<(AggFn, Option<&[Value]>)> = aggn
                .aggs
                .iter()
                .map(|a| (a.agg, a.src.map(|si| mat[pos(si)].as_slice())))
                .collect();
            let ident: Vec<usize> = (0..pairs.len()).collect();
            let t = aggregate(
                &keys,
                &aggs,
                &ident,
                aggn.whole_table,
                &res.result_name,
                &res.result,
            );
            return finish_aggregate(plan, t, workers);
        }

        if let Some((oc, asc)) = &plan.order_by {
            // `resolve` already proved the ORDER BY column is in the
            // projection, so the find always hits.
            let found = res
                .projection
                .iter()
                .copied()
                .find(|&si| res.source[si].name == *oc);
            if let (false, Some(si)) = (plan.sort_elided, found) {
                let (side, key) = side_slice(res, left, Some(right), si);
                // Stable sort over left-major pair order: equal keys keep
                // their deterministic join order.
                pairs.sort_by(|&(la, ra), &(lb, rb)| {
                    let (ia, ib) = match side {
                        Side::Left => (la, lb),
                        Side::Right => (ra, rb),
                    };
                    let o = key[ia].total_cmp(&key[ib]);
                    if *asc {
                        o
                    } else {
                        o.reverse()
                    }
                });
            }
        }
        if let Some(n) = plan.limit {
            pairs.truncate(n);
        }
        let cols: Vec<(Side, &[Value])> = res
            .projection
            .iter()
            .map(|&si| side_slice(res, left, Some(right), si))
            .collect();
        let data = gather_pair_cols(&cols, &pairs, workers);
        return Ok(Table::from_parts(
            res.result_name.clone(),
            res.result.clone(),
            data,
        ));
    }

    // Single-table pipeline.
    if let Some(aggn) = &res.aggregate {
        let keys: Vec<&[Value]> = aggn
            .keys
            .iter()
            .map(|&si| left.col(res.source[si].ci))
            .collect();
        let aggs: Vec<(AggFn, Option<&[Value]>)> = aggn
            .aggs
            .iter()
            .map(|a| (a.agg, a.src.map(|si| left.col(res.source[si].ci))))
            .collect();
        let t = aggregate(
            &keys,
            &aggs,
            &lsel,
            aggn.whole_table,
            &res.result_name,
            &res.result,
        );
        return finish_aggregate(plan, t, workers);
    }

    if let Some((oc, asc)) = &plan.order_by {
        // `resolve` already proved the ORDER BY column is in the
        // projection, so the find always hits.
        let found = res
            .projection
            .iter()
            .copied()
            .find(|&si| res.source[si].name == *oc);
        if let (false, Some(si)) = (plan.sort_elided, found) {
            let key = left.col(res.source[si].ci);
            // Stable sort over the ascending selection: equal keys keep
            // row order, matching the materializing path bit for bit.
            lsel.sort_by(|&a, &b| {
                let o = key[a].total_cmp(&key[b]);
                if *asc {
                    o
                } else {
                    o.reverse()
                }
            });
        }
    }
    if let Some(n) = plan.limit {
        lsel.truncate(n);
    }
    let cols: Vec<&[Value]> = res
        .projection
        .iter()
        .map(|&si| left.col(res.source[si].ci))
        .collect();
    let data = gather_sel(&cols, &lsel, workers);
    Ok(Table::from_parts(
        res.result_name.clone(),
        res.result.clone(),
        data,
    ))
}

/// HAVING → ORDER BY → LIMIT over a materialized aggregate table (always
/// small: one row per group).
fn finish_aggregate(plan: &Plan<'_>, mut t: Table, workers: usize) -> Result<Table, DbError> {
    if let Some(h) = &plan.having {
        let sel = CompiledPredicate::compile(&t, h).matching_rows_with(workers);
        t = t.gather(t.name(), &sel);
    }
    if let Some((oc, asc)) = &plan.order_by {
        if !plan.sort_elided {
            t = t.order_by(oc, *asc)?;
        }
    }
    if let Some(n) = plan.limit {
        if t.row_count() > n {
            let keep: Vec<usize> = (0..n).collect();
            t = t.gather(t.name(), &keep);
        }
    }
    Ok(t)
}

/// The pre-planner execution shape: join the full tables (hash always on
/// the right side), filter the materialized result, aggregate, then sort
/// and limit — materializing a table between every clause. Kept as the
/// planner-off ablation baseline; byte-identical to [`run_optimized`].
fn run_unoptimized(plan: &Plan<'_>, workers: usize) -> Result<Table, DbError> {
    let res = &plan.res;
    let identity_projection = res.projection.len() == res.source.len()
        && res.projection.iter().enumerate().all(|(i, &si)| i == si);

    let mut cur: Table;
    if let (Some(right), Some((lci, rci))) = (plan.right, res.join_keys) {
        cur = join_unoptimized(plan.left, right, lci, rci, res)?;
        cur = cur.filter_with(&plan.residual, workers);
        if res.aggregate.is_none() && !identity_projection {
            let names: Vec<&str> = res
                .projection
                .iter()
                .map(|&si| res.source[si].name.as_str())
                .collect();
            cur = cur.select(&names, &Predicate::True)?;
        }
    } else if res.aggregate.is_none() && !identity_projection {
        // The legacy fused SELECT: projected columns gathered straight off
        // the matching rows.
        let names: Vec<&str> = res
            .projection
            .iter()
            .map(|&si| res.source[si].name.as_str())
            .collect();
        cur = plan.left.select(&names, &plan.left_pred)?;
    } else {
        cur = plan.left.filter_with(&plan.left_pred, workers);
    }

    if let Some(aggn) = &res.aggregate {
        let keys: Vec<&[Value]> = aggn.keys.iter().map(|&si| cur.col(si)).collect();
        let aggs: Vec<(AggFn, Option<&[Value]>)> = aggn
            .aggs
            .iter()
            .map(|a| (a.agg, a.src.map(|si| cur.col(si))))
            .collect();
        let ident: Vec<usize> = (0..cur.row_count()).collect();
        let t = aggregate(
            &keys,
            &aggs,
            &ident,
            aggn.whole_table,
            &res.result_name,
            &res.result,
        );
        return finish_aggregate(plan, t, workers);
    }

    let mut t = cur;
    if let Some((oc, asc)) = &plan.order_by {
        t = t.order_by(oc, *asc)?;
    }
    if let Some(n) = plan.limit {
        if t.row_count() > n {
            let keep: Vec<usize> = (0..n).collect();
            t = t.gather(t.name(), &keep);
        }
    }
    // The planner names the result; the clause-by-clause path must agree.
    let (_, schema, cols) = t.into_parts();
    Ok(Table::from_parts(res.result_name.clone(), schema, cols))
}

/// The legacy join: hash index always on the right input, output rows
/// materialized cell-at-a-time in probe order.
fn join_unoptimized(
    left: &Table,
    right: &Table,
    lci: usize,
    rci: usize,
    res: &Resolved,
) -> Result<Table, DbError> {
    let columns: Vec<Column> = res
        .source
        .iter()
        .map(|s| Column::new(s.name.clone(), s.ty))
        .collect();
    let schema = Schema::new(columns)?;
    let rindex = engine::KeyIndex::build(right.col(rci));
    let left_width = left.schema().len();
    let mut cols: Vec<Vec<Value>> = vec![Vec::new(); schema.len()];
    for (li, lv) in left.col(lci).iter().enumerate() {
        for &ri in rindex.rows(lv) {
            for (ci, out) in cols.iter_mut().enumerate() {
                let cell = if ci < left_width {
                    &left.col(ci)[li]
                } else {
                    &right.col(ci - left_width)[ri]
                };
                // perf: pre-planner baseline — row-at-a-time
                // materialization is the shape the planner is measured
                // against.
                out.push(cell.clone());
            }
        }
    }
    Ok(Table::from_parts(
        format!("{}_x_{}", left.name(), right.name()),
        schema,
        cols,
    ))
}
