//! # mscope-db — the mScopeDB dynamic data warehouse
//!
//! The paper's mScopeDB (§III-C) persists all monitoring data in one place:
//! **four static tables** of loading-metadata (experiments, nodes, monitors,
//! log files) and **dynamically created tables** — one per monitor data
//! stream — whose schemas mScopeDataTransformer infers bottom-up from the
//! logs themselves.
//!
//! This crate implements that warehouse in-memory:
//!
//! * [`Value`] / [`ColumnType`] — cell values and the type-inference
//!   lattice ("narrowest type that stores all values wins");
//! * [`Schema`] / [`Table`] — columnar tables with checked inserts;
//! * query layer — [`Predicate`] filters, projections, fixed-window
//!   aggregation ([`AggFn`]), hash joins, sorting, grouping — everything
//!   the analysis layer needs to reproduce the paper's figures;
//! * compiled engine — [`CompiledPredicate`] (names/values bound once per
//!   query), per-block zone maps with a sorted-timestamp flag,
//!   [`KeyIndex`] hash joins, and a deterministic parallel block scan;
//!   the naive row-at-a-time evaluators remain as reference oracles
//!   ([`Table::filter_naive`], [`Table::inner_join_naive`]);
//! * [`Database`] — the warehouse with static + dynamic tables.
//!
//! ## Example
//!
//! ```
//! use mscope_db::{AggFn, Column, ColumnType, Database, Predicate, Schema, Value};
//!
//! let mut db = Database::new();
//! db.create_table("disk", Schema::new(vec![
//!     Column::new("time_us", ColumnType::Int),
//!     Column::new("node", ColumnType::Text),
//!     Column::new("util", ColumnType::Float),
//! ])?)?;
//! db.insert("disk", vec![Value::Int(0), "mysql0".into(), Value::Float(99.0)])?;
//! db.insert("disk", vec![Value::Int(50_000), "mysql0".into(), Value::Float(97.0)])?;
//!
//! // Which node saturated its disk?
//! let hot = db.require("disk")?
//!     .filter(&Predicate::Gt("util".into(), Value::Float(90.0)));
//! assert_eq!(hot.row_count(), 2);
//!
//! // 100 ms windowed max.
//! let series = db.require("disk")?.window_agg("time_us", 100_000, "util", AggFn::Max)?;
//! assert_eq!(series, vec![(0, 99.0)]);
//! # Ok::<(), mscope_db::DbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod engine;
mod error;
mod plan;
mod query;
pub mod sql;
mod table;
mod value;
mod vector;

pub use db::{Database, STATIC_TABLES};
pub use engine::{CompiledPredicate, KeyIndex, DEFAULT_BLOCK_ROWS, PARALLEL_MIN_ROWS};
pub use error::DbError;
pub use query::{AggFn, Predicate};
pub use sql::QueryOptions;
pub use table::{Column, Schema, Table};
pub use value::{ColumnType, Value, ValueKey};
