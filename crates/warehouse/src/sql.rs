//! A small SQL subset over the warehouse — the interactive face of
//! mScopeDB's "unified interface … for advanced analysis" (paper §III-C).
//!
//! Supported grammar:
//!
//! ```text
//! SELECT <projection> FROM <table>
//!        [WHERE <predicate>]
//!        [GROUP BY <column>]
//!        [ORDER BY <column> [ASC|DESC]]
//!        [LIMIT <n>]
//!
//! projection := * | col [, col …] | col, AGG(col) (with GROUP BY)
//!             | AGG(col)           (whole-table aggregate)
//! AGG        := COUNT | SUM | AVG | MIN | MAX
//! predicate  := disjunction of conjunctions with parentheses and NOT:
//!               a = 1 AND (b > 2.5 OR NOT c = 'text')
//! literal    := integer | float | 'single-quoted string'
//!             | time 'HH:MM:SS.ffffff' | TRUE | FALSE | NULL
//! comparison := = != <> < <= > >=
//! ```
//!
//! Identifiers and keywords are case-insensitive except quoted strings.

use crate::db::Database;
use crate::query::{AggFn, Predicate};
use crate::table::{Column, Schema, Table};
use crate::value::{ColumnType, Value};
use crate::DbError;

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(String),
    Comma,
    Star,
    LParen,
    RParen,
    Op(String),
}

fn lex(input: &str) -> Result<Vec<Tok>, DbError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            // Doubled quote escapes a literal quote.
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(DbError::BadQuery("unterminated string literal".into()))
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '=' => {
                chars.next();
                toks.push(Tok::Op("=".into()));
            }
            '!' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err(DbError::BadQuery("expected `!=`".into()));
                }
                toks.push(Tok::Op("!=".into()));
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        toks.push(Tok::Op("<=".into()));
                    }
                    Some('>') => {
                        chars.next();
                        toks.push(Tok::Op("!=".into()));
                    }
                    _ => toks.push(Tok::Op("<".into())),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Op(">=".into()));
                } else {
                    toks.push(Tok::Op(">".into()));
                }
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit()
                        || d == '.'
                        || d == 'e'
                        || d == 'E'
                        || d == '-'
                        || d == '+'
                    {
                        // Allow exponent forms; the parser re-validates.
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Num(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => {
                return Err(DbError::BadQuery(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Projection {
    All,
    Columns(Vec<String>),
    /// `GROUP BY` form: key column (optional for whole-table aggregates),
    /// aggregate, aggregated column.
    Aggregate {
        key: Option<String>,
        agg: AggFn,
        col: String,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct Query {
    projection: Projection,
    table: String,
    predicate: Predicate,
    group_by: Option<String>,
    order_by: Option<(String, bool)>,
    limit: Option<usize>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(DbError::BadQuery(format!("expected `{kw}`, got {other:?}"))),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(DbError::BadQuery(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn parse(&mut self) -> Result<Query, DbError> {
        self.expect_kw("select")?;
        let projection = self.projection()?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let predicate = if self.peek_kw("where") {
            self.next();
            self.or_expr()?
        } else {
            Predicate::True
        };
        let group_by = if self.peek_kw("group") {
            self.next();
            self.expect_kw("by")?;
            Some(self.ident()?)
        } else {
            None
        };
        let order_by = if self.peek_kw("order") {
            self.next();
            self.expect_kw("by")?;
            let col = self.ident()?;
            let asc = if self.peek_kw("desc") {
                self.next();
                false
            } else {
                if self.peek_kw("asc") {
                    self.next();
                }
                true
            };
            Some((col, asc))
        } else {
            None
        };
        let limit = if self.peek_kw("limit") {
            self.next();
            match self.next() {
                Some(Tok::Num(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| DbError::BadQuery(format!("bad LIMIT `{n}`")))?,
                ),
                other => {
                    return Err(DbError::BadQuery(format!(
                        "expected LIMIT count, got {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        if self.peek().is_some() {
            return Err(DbError::BadQuery(format!(
                "trailing tokens starting at {:?}",
                self.peek()
            )));
        }
        Ok(Query {
            projection,
            table,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    fn agg_kw(name: &str) -> Option<AggFn> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFn::Count),
            "sum" => Some(AggFn::Sum),
            "avg" => Some(AggFn::Mean),
            "min" => Some(AggFn::Min),
            "max" => Some(AggFn::Max),
            _ => None,
        }
    }

    fn projection(&mut self) -> Result<Projection, DbError> {
        if matches!(self.peek(), Some(Tok::Star)) {
            self.next();
            return Ok(Projection::All);
        }
        // Either plain column list, or [key,] AGG(col).
        let mut cols: Vec<String> = Vec::new();
        loop {
            let name = self.ident()?;
            if matches!(self.peek(), Some(Tok::LParen)) {
                let agg = Self::agg_kw(&name)
                    .ok_or_else(|| DbError::BadQuery(format!("unknown aggregate `{name}`")))?;
                self.next(); // (
                let col = match self.next() {
                    Some(Tok::Ident(c)) => c,
                    // perf: parse-time — one owned name per aggregate in
                    // the query text, never per row.
                    Some(Tok::Star) if agg == AggFn::Count => "*".to_string(),
                    other => {
                        return Err(DbError::BadQuery(format!(
                            "expected aggregate column, got {other:?}"
                        )))
                    }
                };
                match self.next() {
                    Some(Tok::RParen) => {}
                    other => return Err(DbError::BadQuery(format!("expected `)`, got {other:?}"))),
                }
                let key = match cols.len() {
                    0 => None,
                    1 => Some(cols.remove(0)),
                    _ => {
                        return Err(DbError::BadQuery(
                            "at most one key column before an aggregate".into(),
                        ))
                    }
                };
                return Ok(Projection::Aggregate { key, agg, col });
            }
            cols.push(name);
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.next();
            } else {
                break;
            }
        }
        Ok(Projection::Columns(cols))
    }

    // predicate := and_expr (OR and_expr)*
    fn or_expr(&mut self) -> Result<Predicate, DbError> {
        let first = self.and_expr()?;
        if !self.peek_kw("or") {
            return Ok(first);
        }
        let mut terms = vec![first];
        while self.peek_kw("or") {
            self.next();
            terms.push(self.and_expr()?);
        }
        Ok(Predicate::Or(terms))
    }

    fn and_expr(&mut self) -> Result<Predicate, DbError> {
        let first = self.unary_expr()?;
        if !self.peek_kw("and") {
            return Ok(first);
        }
        let mut terms = vec![first];
        while self.peek_kw("and") {
            self.next();
            terms.push(self.unary_expr()?);
        }
        Ok(Predicate::And(terms))
    }

    fn unary_expr(&mut self) -> Result<Predicate, DbError> {
        if self.peek_kw("not") {
            self.next();
            return Ok(Predicate::Not(Box::new(self.unary_expr()?)));
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.next();
            let inner = self.or_expr()?;
            match self.next() {
                Some(Tok::RParen) => return Ok(inner),
                other => return Err(DbError::BadQuery(format!("expected `)`, got {other:?}"))),
            }
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate, DbError> {
        let col = self.ident()?;
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            other => {
                return Err(DbError::BadQuery(format!(
                    "expected comparison, got {other:?}"
                )))
            }
        };
        let value = self.literal()?;
        Ok(match op.as_str() {
            "=" => Predicate::Eq(col, value),
            "!=" => Predicate::Ne(col, value),
            "<" => Predicate::Lt(col, value),
            "<=" => Predicate::Le(col, value),
            ">" => Predicate::Gt(col, value),
            ">=" => Predicate::Ge(col, value),
            other => return Err(DbError::BadQuery(format!("unknown operator `{other}`"))),
        })
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.next() {
            Some(Tok::Num(n)) => {
                if let Ok(i) = n.parse::<i64>() {
                    Ok(Value::Int(i))
                } else {
                    n.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| DbError::BadQuery(format!("bad number `{n}`")))
                }
            }
            Some(Tok::Str(s)) => Ok(Value::Text(s)),
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("null") => Ok(Value::Null),
            // `time 'HH:MM:SS.ffffff'` literal.
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("time") => match self.next() {
                Some(Tok::Str(s)) => mscope_sim::parse_wallclock(&s)
                    .map(|t| Value::Timestamp(t.as_micros() as i64))
                    .ok_or_else(|| DbError::BadQuery(format!("bad time literal `{s}`"))),
                other => Err(DbError::BadQuery(format!(
                    "expected quoted time literal, got {other:?}"
                ))),
            },
            other => Err(DbError::BadQuery(format!(
                "expected literal, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

impl Database {
    /// Parses and executes a SQL-subset query, returning the result as a
    /// fresh [`Table`].
    ///
    /// # Errors
    ///
    /// [`DbError::BadQuery`] on syntax errors; [`DbError::NoSuchTable`] /
    /// [`DbError::NoSuchColumn`] on semantic errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use mscope_db::{Column, ColumnType, Database, Schema, Value};
    ///
    /// let mut db = Database::new();
    /// db.create_table("disk", Schema::new(vec![
    ///     Column::new("node", ColumnType::Text),
    ///     Column::new("util", ColumnType::Float),
    /// ])?)?;
    /// db.insert("disk", vec!["mysql0".into(), Value::Float(99.0)])?;
    /// db.insert("disk", vec!["apache0".into(), Value::Float(2.0)])?;
    ///
    /// let hot = db.query("SELECT node FROM disk WHERE util > 90 ORDER BY node")?;
    /// assert_eq!(hot.row_count(), 1);
    /// assert_eq!(hot.cell(0, "node"), Some(&Value::Text("mysql0".into())));
    /// # Ok::<(), mscope_db::DbError>(())
    /// ```
    pub fn query(&self, sql: &str) -> Result<Table, DbError> {
        let toks = lex(sql)?;
        let q = Parser { toks, pos: 0 }.parse()?;
        let base = self.require(&q.table)?;

        // GROUP BY / aggregates. Each arm filters for itself so that the
        // column-projection arm can fuse WHERE and SELECT into a single
        // compiled-predicate pass with no intermediate table.
        let mut result: Table = match (&q.projection, &q.group_by) {
            (Projection::Aggregate { key, agg, col }, Some(group_col)) => {
                if let Some(k) = key {
                    if k != group_col {
                        return Err(DbError::BadQuery(format!(
                            "projection key `{k}` must match GROUP BY `{group_col}`"
                        )));
                    }
                }
                let value_col = if col == "*" {
                    group_col.clone()
                } else {
                    col.clone()
                };
                let grouped = base
                    .filter(&q.predicate)
                    .group_by(group_col, &value_col, *agg)?;
                if col == "*" {
                    // `COUNT(*)` collides with the key column inside
                    // group_by; present it under standard SQL-ish names.
                    rename_columns(grouped, &[group_col, "count"])?
                } else {
                    grouped
                }
            }
            (
                Projection::Aggregate {
                    key: None,
                    agg,
                    col,
                },
                None,
            ) => {
                // Whole-table aggregate → single row.
                let filtered = base.filter(&q.predicate);
                let vals: Vec<f64> = if col == "*" {
                    (0..filtered.row_count()).map(|_| 1.0).collect()
                } else {
                    if filtered.schema().index_of(col).is_none() {
                        return Err(DbError::NoSuchColumn(col.clone()));
                    }
                    filtered.numeric_column(col)
                };
                let out_val = match agg {
                    AggFn::Count => Some(vals.len() as f64),
                    AggFn::Sum => Some(vals.iter().sum()),
                    AggFn::Mean => {
                        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
                    }
                    AggFn::Min => vals.iter().cloned().reduce(f64::min),
                    AggFn::Max => vals.iter().cloned().reduce(f64::max),
                    AggFn::Last => vals.last().copied(),
                };
                let schema = Schema::new(vec![Column::new(
                    format!("{}_{col}", agg_name(*agg)),
                    ColumnType::Float,
                )])?;
                let mut t = Table::new("result", schema);
                t.push_row(vec![out_val.map_or(Value::Null, Value::Float)])?;
                t
            }
            (Projection::Aggregate { key: Some(_), .. }, None) => {
                return Err(DbError::BadQuery(
                    "keyed aggregate requires GROUP BY".into(),
                ))
            }
            (_, Some(_)) => {
                return Err(DbError::BadQuery(
                    "GROUP BY requires an aggregate projection".into(),
                ))
            }
            (Projection::All, None) => base.filter(&q.predicate),
            (Projection::Columns(cols), None) => {
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                base.select(&refs, &q.predicate)?
            }
        };

        if let Some((col, asc)) = &q.order_by {
            result = result.order_by(col, *asc)?;
        }
        if let Some(n) = q.limit {
            let keep: Vec<usize> = (0..result.row_count().min(n)).collect();
            result = result.select_rows(&keep);
        }
        Ok(result)
    }
}

// ---------------------------------------------------------------------
// Static checking — the SQL front of `mscope-lint`.
// ---------------------------------------------------------------------

/// Statically checks a query against a schema oracle, without executing
/// anything: syntax, table existence, every referenced column, predicate
/// literal types, aggregate input types, and the `ORDER BY` column's
/// presence in the projection's *result* schema.
///
/// `schema_of` returns the (possibly merely predicted) schema for a table
/// name, or `None` if the table is unknown. A column typed
/// [`ColumnType::Null`] means "type unknown until runtime" and passes every
/// type-sensitive check — only membership is enforced for it.
///
/// The type rule mirrors [`Value::total_cmp`]: values of incomparable
/// types fall back to rank ordering, so a comparison whose column/literal
/// lattice join degenerates to [`ColumnType::Text`] (without both sides
/// *being* text) can never mean what the query author intended and is
/// rejected as [`DbError::TypeMismatch`].
///
/// # Errors
///
/// The same error a real execution would produce — [`DbError::BadQuery`],
/// [`DbError::NoSuchTable`], [`DbError::NoSuchColumn`] — plus
/// [`DbError::TypeMismatch`] for statically impossible comparisons and
/// non-numeric aggregations.
pub fn check_with<F>(sql: &str, schema_of: F) -> Result<(), DbError>
where
    F: Fn(&str) -> Option<Schema>,
{
    let toks = lex(sql)?;
    let q = Parser { toks, pos: 0 }.parse()?;
    let schema = schema_of(&q.table).ok_or_else(|| DbError::NoSuchTable(q.table.clone()))?;
    let col_ty = |name: &str| schema.index_of(name).map(|i| schema.columns()[i].ty);

    check_predicate(&q.predicate, &q.table, &col_ty)?;

    // Result columns of the projection, for the ORDER BY check below —
    // mirrors the result-table construction in `Database::query`.
    let mut result_cols: Vec<String> = Vec::new();
    match (&q.projection, &q.group_by) {
        (Projection::All, None) => {
            result_cols.extend(schema.columns().iter().map(|c| c.name.clone()));
        }
        (Projection::Columns(cols), None) => {
            for c in cols {
                if col_ty(c).is_none() {
                    return Err(DbError::NoSuchColumn(c.clone()));
                }
            }
            result_cols.extend(cols.iter().cloned());
        }
        (Projection::Aggregate { key, agg, col }, Some(group_col)) => {
            if let Some(k) = key {
                if k != group_col {
                    return Err(DbError::BadQuery(format!(
                        "projection key `{k}` must match GROUP BY `{group_col}`"
                    )));
                }
            }
            if col_ty(group_col).is_none() {
                return Err(DbError::NoSuchColumn(group_col.clone()));
            }
            if col == "*" {
                result_cols.push(group_col.clone());
                result_cols.push("count".to_string());
            } else {
                check_agg_input(&q.table, *agg, col, &col_ty)?;
                let key_name = if group_col == col {
                    format!("{group_col}_key")
                } else {
                    group_col.clone()
                };
                result_cols.push(key_name);
                result_cols.push(col.clone());
            }
        }
        (
            Projection::Aggregate {
                key: None,
                agg,
                col,
            },
            None,
        ) => {
            if col != "*" {
                check_agg_input(&q.table, *agg, col, &col_ty)?;
            }
            result_cols.push(format!("{}_{col}", agg_name(*agg)));
        }
        (Projection::Aggregate { key: Some(_), .. }, None) => {
            return Err(DbError::BadQuery(
                "keyed aggregate requires GROUP BY".into(),
            ))
        }
        (_, Some(_)) => {
            return Err(DbError::BadQuery(
                "GROUP BY requires an aggregate projection".into(),
            ))
        }
    }

    if let Some((col, _)) = &q.order_by {
        if !result_cols.iter().any(|c| c == col) {
            return Err(DbError::NoSuchColumn(col.clone()));
        }
    }
    Ok(())
}

/// [`check_with`] against the live schemas of a [`Database`].
///
/// # Errors
///
/// See [`check_with`].
pub fn check_against(db: &Database, sql: &str) -> Result<(), DbError> {
    check_with(sql, |t| db.table(t).map(|tab| tab.schema().clone()))
}

fn check_agg_input<F>(table: &str, agg: AggFn, col: &str, col_ty: &F) -> Result<(), DbError>
where
    F: Fn(&str) -> Option<ColumnType>,
{
    let ty = col_ty(col).ok_or_else(|| DbError::NoSuchColumn(col.to_string()))?;
    // COUNT accepts any type; the numeric folds silently skip values
    // `as_f64` rejects, so a text column would aggregate to nothing.
    if agg != AggFn::Count && ty == ColumnType::Text {
        return Err(DbError::TypeMismatch {
            table: table.to_string(),
            column: col.to_string(),
            expected: ColumnType::Float,
            got: ty,
        });
    }
    Ok(())
}

fn check_predicate<F>(p: &Predicate, table: &str, col_ty: &F) -> Result<(), DbError>
where
    F: Fn(&str) -> Option<ColumnType>,
{
    let cmp = |col: &str, v: &Value| -> Result<(), DbError> {
        let ct = col_ty(col).ok_or_else(|| DbError::NoSuchColumn(col.to_string()))?;
        let vt = v.column_type();
        if ct == ColumnType::Null || vt == ColumnType::Null {
            return Ok(()); // unknown column type / NULL literal: defer
        }
        if ct.unify(vt) == ColumnType::Text && !(ct == ColumnType::Text && vt == ColumnType::Text) {
            return Err(DbError::TypeMismatch {
                table: table.to_string(),
                column: col.to_string(),
                expected: ct,
                got: vt,
            });
        }
        Ok(())
    };
    match p {
        Predicate::True => Ok(()),
        Predicate::Eq(c, v)
        | Predicate::Ne(c, v)
        | Predicate::Lt(c, v)
        | Predicate::Le(c, v)
        | Predicate::Gt(c, v)
        | Predicate::Ge(c, v) => cmp(c, v),
        Predicate::Between(c, lo, hi) => {
            cmp(c, lo)?;
            cmp(c, hi)
        }
        Predicate::And(ps) | Predicate::Or(ps) => ps
            .iter()
            .try_for_each(|p| check_predicate(p, table, col_ty)),
        Predicate::Not(inner) => check_predicate(inner, table, col_ty),
    }
}

/// Rebuilds a table with new column names (arity must match). The cell
/// data is moved, not copied: only the schema changes, so the column
/// vectors transfer wholesale instead of being re-pushed row by row.
fn rename_columns(t: Table, names: &[&str]) -> Result<Table, DbError> {
    if names.len() != t.schema().len() {
        return Err(DbError::BadQuery("rename arity mismatch".into()));
    }
    let columns: Vec<Column> = t
        .schema()
        .columns()
        .iter()
        .zip(names)
        .map(|(c, n)| Column::new(*n, c.ty))
        .collect();
    let schema = Schema::new(columns)?;
    let (name, _, cols) = t.into_parts();
    Ok(Table::from_parts(name, schema, cols))
}

fn agg_name(agg: AggFn) -> &'static str {
    match agg {
        AggFn::Count => "count",
        AggFn::Sum => "sum",
        AggFn::Mean => "avg",
        AggFn::Min => "min",
        AggFn::Max => "max",
        AggFn::Last => "last",
    }
}

impl Table {
    /// Keeps only the given row indices (public sibling of the internal
    /// gather, used by LIMIT).
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        self.gather(self.name(), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("node", ColumnType::Text),
            Column::new("tier", ColumnType::Int),
            Column::new("util", ColumnType::Float),
            Column::new("time", ColumnType::Timestamp),
        ])
        .unwrap();
        db.create_table("disk", schema).unwrap();
        for (node, tier, util, us) in [
            ("apache0", 0, 2.0, 50_000),
            ("tomcat0", 1, 3.5, 50_000),
            ("mysql0", 3, 99.0, 50_000),
            ("mysql0", 3, 97.0, 100_000),
            ("mysql0", 3, 1.0, 150_000),
        ] {
            db.insert(
                "disk",
                vec![
                    Value::Text(node.into()),
                    Value::Int(tier),
                    Value::Float(util),
                    Value::Timestamp(us),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn select_star_and_where() {
        let db = db();
        let all = db.query("SELECT * FROM disk").unwrap();
        assert_eq!(all.row_count(), 5);
        assert_eq!(all.schema().len(), 4);
        let hot = db.query("SELECT * FROM disk WHERE util > 90").unwrap();
        assert_eq!(hot.row_count(), 2);
    }

    #[test]
    fn projection_and_order_limit() {
        let db = db();
        let t = db
            .query("SELECT node, util FROM disk ORDER BY util DESC LIMIT 2")
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.schema().len(), 2);
        assert_eq!(t.cell(0, "util"), Some(&Value::Float(99.0)));
        assert_eq!(t.cell(1, "util"), Some(&Value::Float(97.0)));
    }

    #[test]
    fn boolean_logic_and_parens() {
        let db = db();
        let t = db
            .query("SELECT node FROM disk WHERE tier = 3 AND (util > 98 OR util < 2)")
            .unwrap();
        assert_eq!(t.row_count(), 2);
        let n = db
            .query("SELECT node FROM disk WHERE NOT node = 'mysql0'")
            .unwrap();
        assert_eq!(n.row_count(), 2);
    }

    #[test]
    fn string_and_time_literals() {
        let db = db();
        let t = db
            .query("SELECT util FROM disk WHERE node = 'mysql0' AND time >= time '00:00:00.100000'")
            .unwrap();
        assert_eq!(t.row_count(), 2);
        // Escaped quote inside a string.
        let esc = db
            .query("SELECT * FROM disk WHERE node = 'o''brien'")
            .unwrap();
        assert_eq!(esc.row_count(), 0);
    }

    #[test]
    fn group_by_aggregates() {
        let db = db();
        let t = db
            .query("SELECT node, MAX(util) FROM disk GROUP BY node ORDER BY node")
            .unwrap();
        assert_eq!(t.row_count(), 3);
        // Keys sort ascending: apache0, mysql0, tomcat0.
        assert_eq!(t.cell(1, "util"), Some(&Value::Float(99.0)), "mysql0 max");
        let c = db
            .query("SELECT node, COUNT(*) FROM disk GROUP BY node ORDER BY node DESC")
            .unwrap();
        assert_eq!(c.cell(0, "node"), Some(&Value::Text("tomcat0".into())));
        assert_eq!(c.cell(1, "node"), Some(&Value::Text("mysql0".into())));
        assert_eq!(c.cell(1, "count").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn whole_table_aggregates() {
        let db = db();
        let t = db
            .query("SELECT AVG(util) FROM disk WHERE tier = 3")
            .unwrap();
        assert_eq!(t.row_count(), 1);
        let avg = t.cell(0, "avg_util").and_then(Value::as_f64).unwrap();
        assert!((avg - 65.666).abs() < 0.01);
        let c = db.query("SELECT COUNT(*) FROM disk").unwrap();
        assert_eq!(c.cell(0, "count_*").and_then(Value::as_f64), Some(5.0));
        // Aggregate over empty selection.
        let none = db
            .query("SELECT MAX(util) FROM disk WHERE tier = 99")
            .unwrap();
        assert_eq!(none.cell(0, "max_util"), Some(&Value::Null));
    }

    #[test]
    fn case_insensitivity_and_operators() {
        let db = db();
        // Keywords are case-insensitive; identifiers are case-sensitive, so
        // `NODE` is an unknown column.
        let err = db
            .query("select NODE from disk where util >= 97")
            .unwrap_err();
        assert!(
            matches!(err, DbError::NoSuchColumn(ref c) if c == "NODE"),
            "{err}"
        );
        let t = db.query("select node from disk where util <> 99").unwrap();
        assert_eq!(t.row_count(), 4);
        let le = db.query("SELECT node FROM disk WHERE util <= 2").unwrap();
        assert_eq!(le.row_count(), 2);
    }

    #[test]
    fn syntax_errors_are_bad_query() {
        let db = db();
        for bad in [
            "SELEC * FROM disk",
            "SELECT * FROM",
            "SELECT * FROM disk WHERE",
            "SELECT * FROM disk WHERE util >",
            "SELECT * FROM disk LIMIT x",
            "SELECT * FROM disk trailing garbage",
            "SELECT FOO(util) FROM disk",
            "SELECT node, MAX(util) FROM disk", // keyed agg without GROUP BY
            "SELECT node FROM disk GROUP BY node", // GROUP BY without agg
            "SELECT * FROM disk WHERE node = 'unterminated",
        ] {
            assert!(
                matches!(db.query(bad), Err(DbError::BadQuery(_))),
                "{bad} should be a syntax error, got {:?}",
                db.query(bad)
            );
        }
        assert!(matches!(
            db.query("SELECT * FROM ghost"),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            db.query("SELECT ghost FROM disk"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn static_check_accepts_valid_queries() {
        let db = db();
        for sql in [
            "SELECT * FROM disk",
            "SELECT node, util FROM disk WHERE util > 90 ORDER BY util DESC LIMIT 3",
            "SELECT node, MAX(util) FROM disk GROUP BY node ORDER BY node",
            "SELECT node, COUNT(*) FROM disk GROUP BY node ORDER BY count",
            "SELECT AVG(util) FROM disk WHERE tier = 3",
            "SELECT util FROM disk WHERE time >= time '00:00:00.100000'",
        ] {
            check_against(&db, sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn static_check_rejects_missing_tables_and_columns() {
        let db = db();
        assert!(matches!(
            check_against(&db, "SELECT * FROM ghost"),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            check_against(&db, "SELECT ghost FROM disk"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            check_against(&db, "SELECT node FROM disk WHERE ghost = 1"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            check_against(&db, "SELECT node, MAX(ghost) FROM disk GROUP BY node"),
            Err(DbError::NoSuchColumn(_))
        ));
        // ORDER BY must name a column of the *result*, not the base table.
        assert!(matches!(
            check_against(&db, "SELECT node FROM disk ORDER BY util"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            check_against(
                &db,
                "SELECT node, MAX(util) FROM disk GROUP BY node ORDER BY time"
            ),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn static_check_rejects_impossible_comparisons() {
        let db = db();
        // Timestamp column vs bare integer: total_cmp falls back to rank
        // ordering, so this would silently match everything.
        assert!(matches!(
            check_against(&db, "SELECT * FROM disk WHERE time >= 100000"),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            check_against(&db, "SELECT * FROM disk WHERE node = 3"),
            Err(DbError::TypeMismatch { .. })
        ));
        // Numeric aggregate over a text column aggregates nothing.
        assert!(matches!(
            check_against(&db, "SELECT tier, SUM(node) FROM disk GROUP BY tier"),
            Err(DbError::TypeMismatch { .. })
        ));
        // …but COUNT over text is fine, and NULL literals defer to runtime.
        check_against(&db, "SELECT tier, COUNT(node) FROM disk GROUP BY tier").unwrap();
        check_against(&db, "SELECT * FROM disk WHERE node != NULL").unwrap();
    }

    #[test]
    fn static_check_with_unknown_typed_schema() {
        // A predicted schema (from declarations) types unseen captures as
        // Null = unknown; type-sensitive checks must then defer.
        let schema = Schema::new(vec![
            Column::new("node", ColumnType::Text),
            Column::new("disk_util", ColumnType::Null),
        ])
        .unwrap();
        let oracle = |t: &str| (t == "collectl").then(|| schema.clone());
        check_with(
            "SELECT node, MAX(disk_util) FROM collectl GROUP BY node",
            oracle,
        )
        .unwrap();
        check_with("SELECT * FROM collectl WHERE disk_util > 90", oracle).unwrap();
        assert!(matches!(
            check_with("SELECT ghost FROM collectl", oracle),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn select_rows_limit_helper() {
        let db = db();
        let t = db.query("SELECT * FROM disk LIMIT 0").unwrap();
        assert_eq!(t.row_count(), 0);
        let t = db.query("SELECT * FROM disk LIMIT 100").unwrap();
        assert_eq!(t.row_count(), 5);
    }
}
