//! A small SQL subset over the warehouse — the interactive face of
//! mScopeDB's "unified interface … for advanced analysis" (paper §III-C).
//!
//! Supported grammar:
//!
//! ```text
//! [EXPLAIN] SELECT <projection> FROM <table>
//!        [JOIN <table> ON [<table>.]col = [<table>.]col]
//!        [WHERE <predicate>]
//!        [GROUP BY <column> [, <column> …]]
//!        [HAVING <predicate>]
//!        [ORDER BY <column> [ASC|DESC]]
//!        [LIMIT <n>]
//!
//! projection := * | item [, item …]
//! item       := col | AGG(col) | COUNT(*)
//! AGG        := COUNT | SUM | AVG | MIN | MAX
//! predicate  := disjunction of conjunctions with parentheses and NOT:
//!               a = 1 AND (b > 2.5 OR NOT c = 'text')
//! literal    := integer | float | 'single-quoted string'
//!             | time 'HH:MM:SS.ffffff' | TRUE | FALSE | NULL
//! comparison := = != <> < <= > >=
//! ```
//!
//! Identifiers and keywords are case-insensitive except quoted strings.
//! After a JOIN, columns are referred to by their *source-relation* names:
//! all of the left table's columns, then the right table's, with a
//! right-side name collision spelled `<right-table>_<col>`. `WHERE`,
//! `GROUP BY`, and the projection use those names; `HAVING` and
//! `ORDER BY` see the *result* schema (group keys render as text,
//! aggregates as floats).
//!
//! Parsing produces a [`ParsedQuery`](crate::plan) which the
//! stats-driven planner ([`crate::plan`]) lowers to a physical plan and
//! the vectorized executor ([`crate::vector`]) runs; `EXPLAIN` returns
//! the plan itself as a one-column table. The same resolution pass backs
//! [`check_with`], so the static checker and the executor agree by
//! construction.

use crate::db::Database;
use crate::plan::{JoinClause, ParsedQuery, SelectItem};
use crate::query::{AggFn, Predicate};
use crate::table::{Schema, Table};
use crate::value::{ColumnType, Value};
use crate::DbError;

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(String),
    Comma,
    Star,
    Dot,
    LParen,
    RParen,
    Op(String),
}

fn lex(input: &str) -> Result<Vec<Tok>, DbError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            // Doubled quote escapes a literal quote.
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(DbError::BadQuery("unterminated string literal".into()))
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '=' => {
                chars.next();
                toks.push(Tok::Op("=".into()));
            }
            '!' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err(DbError::BadQuery("expected `!=`".into()));
                }
                toks.push(Tok::Op("!=".into()));
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        toks.push(Tok::Op("<=".into()));
                    }
                    Some('>') => {
                        chars.next();
                        toks.push(Tok::Op("!=".into()));
                    }
                    _ => toks.push(Tok::Op("<".into())),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Op(">=".into()));
                } else {
                    toks.push(Tok::Op(">".into()));
                }
            }
            // A `.` straight after an identifier is a table qualifier
            // (`t.col`), not the start of a number.
            '.' if matches!(toks.last(), Some(Tok::Ident(_))) => {
                chars.next();
                toks.push(Tok::Dot);
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit()
                        || d == '.'
                        || d == 'e'
                        || d == 'E'
                        || d == '-'
                        || d == '+'
                    {
                        // Allow exponent forms; the parser re-validates.
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Num(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => {
                return Err(DbError::BadQuery(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(toks)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(DbError::BadQuery(format!("expected `{kw}`, got {other:?}"))),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(DbError::BadQuery(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn parse(&mut self) -> Result<ParsedQuery, DbError> {
        let explain = if self.peek_kw("explain") {
            self.next();
            true
        } else {
            false
        };
        self.expect_kw("select")?;
        let items = self.items()?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let join = if self.peek_kw("join") {
            self.next();
            let jtable = self.ident()?;
            self.expect_kw("on")?;
            let (left_qual, left_col) = self.qualified()?;
            match self.next() {
                Some(Tok::Op(op)) if op == "=" => {}
                other => {
                    return Err(DbError::BadQuery(format!(
                        "expected `=` in ON clause, got {other:?}"
                    )))
                }
            }
            let (right_qual, right_col) = self.qualified()?;
            Some(JoinClause {
                table: jtable,
                left_qual,
                left_col,
                right_qual,
                right_col,
            })
        } else {
            None
        };
        let predicate = if self.peek_kw("where") {
            self.next();
            self.or_expr()?
        } else {
            Predicate::True
        };
        let group_by = if self.peek_kw("group") {
            self.next();
            self.expect_kw("by")?;
            let mut keys = vec![self.ident()?];
            while matches!(self.peek(), Some(Tok::Comma)) {
                self.next();
                keys.push(self.ident()?);
            }
            keys
        } else {
            Vec::new()
        };
        let having = if self.peek_kw("having") {
            self.next();
            Some(self.or_expr()?)
        } else {
            None
        };
        let order_by = if self.peek_kw("order") {
            self.next();
            self.expect_kw("by")?;
            let col = self.ident()?;
            let asc = if self.peek_kw("desc") {
                self.next();
                false
            } else {
                if self.peek_kw("asc") {
                    self.next();
                }
                true
            };
            Some((col, asc))
        } else {
            None
        };
        let limit = if self.peek_kw("limit") {
            self.next();
            match self.next() {
                Some(Tok::Num(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| DbError::BadQuery(format!("bad LIMIT `{n}`")))?,
                ),
                other => {
                    return Err(DbError::BadQuery(format!(
                        "expected LIMIT count, got {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        if self.peek().is_some() {
            return Err(DbError::BadQuery(format!(
                "trailing tokens starting at {:?}",
                self.peek()
            )));
        }
        Ok(ParsedQuery {
            explain,
            items,
            table,
            join,
            predicate,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// `[table.]col` — an ON-clause key with an optional qualifier.
    fn qualified(&mut self) -> Result<(Option<String>, String), DbError> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(Tok::Dot)) {
            self.next();
            Ok((Some(first), self.ident()?))
        } else {
            Ok((None, first))
        }
    }

    fn agg_kw(name: &str) -> Option<AggFn> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFn::Count),
            "sum" => Some(AggFn::Sum),
            "avg" => Some(AggFn::Mean),
            "min" => Some(AggFn::Min),
            "max" => Some(AggFn::Max),
            _ => None,
        }
    }

    /// The projection list: `*`, or a comma-separated mix of bare columns
    /// and `AGG(col)` / `COUNT(*)` items in any order.
    fn items(&mut self) -> Result<Vec<SelectItem>, DbError> {
        if matches!(self.peek(), Some(Tok::Star)) {
            self.next();
            return Ok(vec![SelectItem::Star]);
        }
        let mut items: Vec<SelectItem> = Vec::new();
        loop {
            let name = self.ident()?;
            if matches!(self.peek(), Some(Tok::LParen)) {
                let agg = Self::agg_kw(&name)
                    .ok_or_else(|| DbError::BadQuery(format!("unknown aggregate `{name}`")))?;
                self.next(); // (
                let col = match self.next() {
                    Some(Tok::Ident(c)) => c,
                    // perf: parse-time — one owned name per aggregate in
                    // the query text, never per row.
                    Some(Tok::Star) if agg == AggFn::Count => "*".to_string(),
                    other => {
                        return Err(DbError::BadQuery(format!(
                            "expected aggregate column, got {other:?}"
                        )))
                    }
                };
                match self.next() {
                    Some(Tok::RParen) => {}
                    other => return Err(DbError::BadQuery(format!("expected `)`, got {other:?}"))),
                }
                items.push(SelectItem::Agg { agg, col });
            } else {
                items.push(SelectItem::Col(name));
            }
            if matches!(self.peek(), Some(Tok::Comma)) {
                self.next();
            } else {
                break;
            }
        }
        Ok(items)
    }

    // predicate := and_expr (OR and_expr)*
    fn or_expr(&mut self) -> Result<Predicate, DbError> {
        let first = self.and_expr()?;
        if !self.peek_kw("or") {
            return Ok(first);
        }
        let mut terms = vec![first];
        while self.peek_kw("or") {
            self.next();
            terms.push(self.and_expr()?);
        }
        Ok(Predicate::Or(terms))
    }

    fn and_expr(&mut self) -> Result<Predicate, DbError> {
        let first = self.unary_expr()?;
        if !self.peek_kw("and") {
            return Ok(first);
        }
        let mut terms = vec![first];
        while self.peek_kw("and") {
            self.next();
            terms.push(self.unary_expr()?);
        }
        Ok(Predicate::And(terms))
    }

    fn unary_expr(&mut self) -> Result<Predicate, DbError> {
        if self.peek_kw("not") {
            self.next();
            return Ok(Predicate::Not(Box::new(self.unary_expr()?)));
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.next();
            let inner = self.or_expr()?;
            match self.next() {
                Some(Tok::RParen) => return Ok(inner),
                other => return Err(DbError::BadQuery(format!("expected `)`, got {other:?}"))),
            }
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate, DbError> {
        let col = self.ident()?;
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            other => {
                return Err(DbError::BadQuery(format!(
                    "expected comparison, got {other:?}"
                )))
            }
        };
        let value = self.literal()?;
        Ok(match op.as_str() {
            "=" => Predicate::Eq(col, value),
            "!=" => Predicate::Ne(col, value),
            "<" => Predicate::Lt(col, value),
            "<=" => Predicate::Le(col, value),
            ">" => Predicate::Gt(col, value),
            ">=" => Predicate::Ge(col, value),
            other => return Err(DbError::BadQuery(format!("unknown operator `{other}`"))),
        })
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.next() {
            Some(Tok::Num(n)) => {
                if let Ok(i) = n.parse::<i64>() {
                    Ok(Value::Int(i))
                } else {
                    n.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| DbError::BadQuery(format!("bad number `{n}`")))
                }
            }
            Some(Tok::Str(s)) => Ok(Value::Text(s)),
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("null") => Ok(Value::Null),
            // `time 'HH:MM:SS.ffffff'` literal.
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("time") => match self.next() {
                Some(Tok::Str(s)) => mscope_sim::parse_wallclock(&s)
                    .map(|t| Value::Timestamp(t.as_micros() as i64))
                    .ok_or_else(|| DbError::BadQuery(format!("bad time literal `{s}`"))),
                other => Err(DbError::BadQuery(format!(
                    "expected quoted time literal, got {other:?}"
                ))),
            },
            other => Err(DbError::BadQuery(format!(
                "expected literal, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Options for [`Database::query_opts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// Scan/gather worker count (`0` = auto: serial below
    /// [`PARALLEL_MIN_ROWS`](crate::PARALLEL_MIN_ROWS) rows). Results are
    /// byte-identical at every worker count.
    pub workers: usize,
    /// Run the statistics-driven planner (predicate/projection pushdown,
    /// join build-side selection, sort elision). `false` executes the
    /// same query clause-by-clause in the pre-planner shape — results
    /// are byte-identical either way; only the work differs.
    pub optimize: bool,
}

impl Default for QueryOptions {
    fn default() -> QueryOptions {
        QueryOptions {
            workers: 0,
            optimize: true,
        }
    }
}

impl Database {
    /// Parses and executes a SQL-subset query, returning the result as a
    /// fresh [`Table`].
    ///
    /// The query is lowered through the stats-driven planner
    /// ([`crate::plan`]) and run on the vectorized columnar executor
    /// ([`crate::vector`]). Prefixing the query with `EXPLAIN` returns
    /// the chosen physical plan as a one-column `plan` table instead of
    /// executing it.
    ///
    /// # Errors
    ///
    /// [`DbError::BadQuery`] on syntax errors; [`DbError::NoSuchTable`] /
    /// [`DbError::NoSuchColumn`] on semantic errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use mscope_db::{Column, ColumnType, Database, Schema, Value};
    ///
    /// let mut db = Database::new();
    /// db.create_table("disk", Schema::new(vec![
    ///     Column::new("node", ColumnType::Text),
    ///     Column::new("util", ColumnType::Float),
    /// ])?)?;
    /// db.insert("disk", vec!["mysql0".into(), Value::Float(99.0)])?;
    /// db.insert("disk", vec!["apache0".into(), Value::Float(2.0)])?;
    ///
    /// let hot = db.query("SELECT node FROM disk WHERE util > 90 ORDER BY node")?;
    /// assert_eq!(hot.row_count(), 1);
    /// assert_eq!(hot.cell(0, "node"), Some(&Value::Text("mysql0".into())));
    /// # Ok::<(), mscope_db::DbError>(())
    /// ```
    pub fn query(&self, sql: &str) -> Result<Table, DbError> {
        self.query_opts(sql, QueryOptions::default())
    }

    /// [`Database::query`] with explicit [`QueryOptions`] — worker count
    /// and planner on/off. Results are byte-identical across every
    /// combination; the options change only how the work is done.
    ///
    /// # Errors
    ///
    /// See [`Database::query`].
    pub fn query_opts(&self, sql: &str, opts: QueryOptions) -> Result<Table, DbError> {
        let toks = lex(sql)?;
        let q = Parser { toks, pos: 0 }.parse()?;
        let plan = crate::plan::plan(self, &q, opts.optimize)?;
        if q.explain {
            return plan.explain_table();
        }
        crate::vector::run(&plan, opts.workers)
    }
}

// ---------------------------------------------------------------------
// Static checking — the SQL front of `mscope-lint`.
// ---------------------------------------------------------------------

/// Statically checks a query against a schema oracle, without executing
/// anything: syntax, table existence, every referenced column, predicate
/// literal types, aggregate input types, and the `ORDER BY` column's
/// presence in the projection's *result* schema.
///
/// `schema_of` returns the (possibly merely predicted) schema for a table
/// name, or `None` if the table is unknown. A column typed
/// [`ColumnType::Null`] means "type unknown until runtime" and passes every
/// type-sensitive check — only membership is enforced for it.
///
/// The type rule mirrors [`Value::total_cmp`]: values of incomparable
/// types fall back to rank ordering, so a comparison whose column/literal
/// lattice join degenerates to [`ColumnType::Text`] (without both sides
/// *being* text) can never mean what the query author intended and is
/// rejected as [`DbError::TypeMismatch`].
///
/// # Errors
///
/// The same error a real execution would produce — [`DbError::BadQuery`],
/// [`DbError::NoSuchTable`], [`DbError::NoSuchColumn`] — plus
/// [`DbError::TypeMismatch`] for statically impossible comparisons and
/// non-numeric aggregations.
pub fn check_with<F>(sql: &str, schema_of: F) -> Result<(), DbError>
where
    F: Fn(&str) -> Option<Schema>,
{
    let toks = lex(sql)?;
    let q = Parser { toks, pos: 0 }.parse()?;
    let left = schema_of(&q.table).ok_or_else(|| DbError::NoSuchTable(q.table.clone()))?;
    let right = match &q.join {
        Some(j) => {
            let s = schema_of(&j.table).ok_or_else(|| DbError::NoSuchTable(j.table.clone()))?;
            Some((j.table.clone(), s))
        }
        None => None,
    };
    // `resolve` performs the same structural validation the executor does:
    // projection/key/ORDER BY membership, JOIN key and qualifier checks,
    // GROUP BY / HAVING shape, result-name collisions.
    let res = crate::plan::resolve(
        &q,
        &q.table,
        &left,
        right.as_ref().map(|(n, s)| (n.as_str(), s)),
    )?;

    // WHERE sees the source relation's output names (joined columns under
    // their collision-prefixed names).
    let src_ty = |name: &str| res.source.iter().find(|s| s.name == name).map(|s| s.ty);
    check_predicate(&q.predicate, &q.table, &src_ty)?;

    // Aggregate inputs must be numerically foldable (COUNT takes anything).
    if let Some(aggnode) = &res.aggregate {
        for a in &aggnode.aggs {
            if let Some(si) = a.src {
                let sc = &res.source[si];
                check_agg_input(&q.table, a.agg, &sc.name, sc.ty)?;
            }
        }
    }

    // HAVING sees the *result* schema: keys rendered as Text, aggregate
    // outputs as Float.
    if let Some(h) = &q.having {
        let result_ty = |name: &str| {
            res.result
                .index_of(name)
                .map(|i| res.result.columns()[i].ty)
        };
        check_predicate(h, &res.result_name, &result_ty)?;
    }
    Ok(())
}

/// [`check_with`] against the live schemas of a [`Database`].
///
/// # Errors
///
/// See [`check_with`].
pub fn check_against(db: &Database, sql: &str) -> Result<(), DbError> {
    check_with(sql, |t| db.table(t).map(|tab| tab.schema().clone()))
}

fn check_agg_input(table: &str, agg: AggFn, col: &str, ty: ColumnType) -> Result<(), DbError> {
    // COUNT accepts any type; the numeric folds silently skip values
    // `as_f64` rejects, so a text column would aggregate to nothing.
    if agg != AggFn::Count && ty == ColumnType::Text {
        return Err(DbError::TypeMismatch {
            table: table.to_string(),
            column: col.to_string(),
            expected: ColumnType::Float,
            got: ty,
        });
    }
    Ok(())
}

fn check_predicate<F>(p: &Predicate, table: &str, col_ty: &F) -> Result<(), DbError>
where
    F: Fn(&str) -> Option<ColumnType>,
{
    let cmp = |col: &str, v: &Value| -> Result<(), DbError> {
        let ct = col_ty(col).ok_or_else(|| DbError::NoSuchColumn(col.to_string()))?;
        let vt = v.column_type();
        if ct == ColumnType::Null || vt == ColumnType::Null {
            return Ok(()); // unknown column type / NULL literal: defer
        }
        if ct.unify(vt) == ColumnType::Text && !(ct == ColumnType::Text && vt == ColumnType::Text) {
            return Err(DbError::TypeMismatch {
                table: table.to_string(),
                column: col.to_string(),
                expected: ct,
                got: vt,
            });
        }
        Ok(())
    };
    match p {
        Predicate::True => Ok(()),
        Predicate::Eq(c, v)
        | Predicate::Ne(c, v)
        | Predicate::Lt(c, v)
        | Predicate::Le(c, v)
        | Predicate::Gt(c, v)
        | Predicate::Ge(c, v) => cmp(c, v),
        Predicate::Between(c, lo, hi) => {
            cmp(c, lo)?;
            cmp(c, hi)
        }
        Predicate::And(ps) | Predicate::Or(ps) => ps
            .iter()
            .try_for_each(|p| check_predicate(p, table, col_ty)),
        Predicate::Not(inner) => check_predicate(inner, table, col_ty),
    }
}

impl Table {
    /// Keeps only the given row indices (public sibling of the internal
    /// gather, used by LIMIT).
    pub fn select_rows(&self, rows: &[usize]) -> Table {
        self.gather(self.name(), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    fn db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("node", ColumnType::Text),
            Column::new("tier", ColumnType::Int),
            Column::new("util", ColumnType::Float),
            Column::new("time", ColumnType::Timestamp),
        ])
        .unwrap();
        db.create_table("disk", schema).unwrap();
        for (node, tier, util, us) in [
            ("apache0", 0, 2.0, 50_000),
            ("tomcat0", 1, 3.5, 50_000),
            ("mysql0", 3, 99.0, 50_000),
            ("mysql0", 3, 97.0, 100_000),
            ("mysql0", 3, 1.0, 150_000),
        ] {
            db.insert(
                "disk",
                vec![
                    Value::Text(node.into()),
                    Value::Int(tier),
                    Value::Float(util),
                    Value::Timestamp(us),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn select_star_and_where() {
        let db = db();
        let all = db.query("SELECT * FROM disk").unwrap();
        assert_eq!(all.row_count(), 5);
        assert_eq!(all.schema().len(), 4);
        let hot = db.query("SELECT * FROM disk WHERE util > 90").unwrap();
        assert_eq!(hot.row_count(), 2);
    }

    #[test]
    fn projection_and_order_limit() {
        let db = db();
        let t = db
            .query("SELECT node, util FROM disk ORDER BY util DESC LIMIT 2")
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.schema().len(), 2);
        assert_eq!(t.cell(0, "util"), Some(&Value::Float(99.0)));
        assert_eq!(t.cell(1, "util"), Some(&Value::Float(97.0)));
    }

    #[test]
    fn boolean_logic_and_parens() {
        let db = db();
        let t = db
            .query("SELECT node FROM disk WHERE tier = 3 AND (util > 98 OR util < 2)")
            .unwrap();
        assert_eq!(t.row_count(), 2);
        let n = db
            .query("SELECT node FROM disk WHERE NOT node = 'mysql0'")
            .unwrap();
        assert_eq!(n.row_count(), 2);
    }

    #[test]
    fn string_and_time_literals() {
        let db = db();
        let t = db
            .query("SELECT util FROM disk WHERE node = 'mysql0' AND time >= time '00:00:00.100000'")
            .unwrap();
        assert_eq!(t.row_count(), 2);
        // Escaped quote inside a string.
        let esc = db
            .query("SELECT * FROM disk WHERE node = 'o''brien'")
            .unwrap();
        assert_eq!(esc.row_count(), 0);
    }

    #[test]
    fn group_by_aggregates() {
        let db = db();
        let t = db
            .query("SELECT node, MAX(util) FROM disk GROUP BY node ORDER BY node")
            .unwrap();
        assert_eq!(t.row_count(), 3);
        // Keys sort ascending: apache0, mysql0, tomcat0.
        assert_eq!(t.cell(1, "util"), Some(&Value::Float(99.0)), "mysql0 max");
        let c = db
            .query("SELECT node, COUNT(*) FROM disk GROUP BY node ORDER BY node DESC")
            .unwrap();
        assert_eq!(c.cell(0, "node"), Some(&Value::Text("tomcat0".into())));
        assert_eq!(c.cell(1, "node"), Some(&Value::Text("mysql0".into())));
        assert_eq!(c.cell(1, "count").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn whole_table_aggregates() {
        let db = db();
        let t = db
            .query("SELECT AVG(util) FROM disk WHERE tier = 3")
            .unwrap();
        assert_eq!(t.row_count(), 1);
        let avg = t.cell(0, "avg_util").and_then(Value::as_f64).unwrap();
        assert!((avg - 65.666).abs() < 0.01);
        let c = db.query("SELECT COUNT(*) FROM disk").unwrap();
        assert_eq!(c.cell(0, "count_*").and_then(Value::as_f64), Some(5.0));
        // Aggregate over empty selection.
        let none = db
            .query("SELECT MAX(util) FROM disk WHERE tier = 99")
            .unwrap();
        assert_eq!(none.cell(0, "max_util"), Some(&Value::Null));
    }

    #[test]
    fn case_insensitivity_and_operators() {
        let db = db();
        // Keywords are case-insensitive; identifiers are case-sensitive, so
        // `NODE` is an unknown column.
        let err = db
            .query("select NODE from disk where util >= 97")
            .unwrap_err();
        assert!(
            matches!(err, DbError::NoSuchColumn(ref c) if c == "NODE"),
            "{err}"
        );
        let t = db.query("select node from disk where util <> 99").unwrap();
        assert_eq!(t.row_count(), 4);
        let le = db.query("SELECT node FROM disk WHERE util <= 2").unwrap();
        assert_eq!(le.row_count(), 2);
    }

    #[test]
    fn syntax_errors_are_bad_query() {
        let db = db();
        for bad in [
            "SELEC * FROM disk",
            "SELECT * FROM",
            "SELECT * FROM disk WHERE",
            "SELECT * FROM disk WHERE util >",
            "SELECT * FROM disk LIMIT x",
            "SELECT * FROM disk trailing garbage",
            "SELECT FOO(util) FROM disk",
            "SELECT node, MAX(util) FROM disk", // keyed agg without GROUP BY
            "SELECT node FROM disk GROUP BY node", // GROUP BY without agg
            "SELECT * FROM disk WHERE node = 'unterminated",
        ] {
            assert!(
                matches!(db.query(bad), Err(DbError::BadQuery(_))),
                "{bad} should be a syntax error, got {:?}",
                db.query(bad)
            );
        }
        assert!(matches!(
            db.query("SELECT * FROM ghost"),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            db.query("SELECT ghost FROM disk"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn static_check_accepts_valid_queries() {
        let db = db();
        for sql in [
            "SELECT * FROM disk",
            "SELECT node, util FROM disk WHERE util > 90 ORDER BY util DESC LIMIT 3",
            "SELECT node, MAX(util) FROM disk GROUP BY node ORDER BY node",
            "SELECT node, COUNT(*) FROM disk GROUP BY node ORDER BY count",
            "SELECT AVG(util) FROM disk WHERE tier = 3",
            "SELECT util FROM disk WHERE time >= time '00:00:00.100000'",
        ] {
            check_against(&db, sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn static_check_rejects_missing_tables_and_columns() {
        let db = db();
        assert!(matches!(
            check_against(&db, "SELECT * FROM ghost"),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            check_against(&db, "SELECT ghost FROM disk"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            check_against(&db, "SELECT node FROM disk WHERE ghost = 1"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            check_against(&db, "SELECT node, MAX(ghost) FROM disk GROUP BY node"),
            Err(DbError::NoSuchColumn(_))
        ));
        // ORDER BY must name a column of the *result*, not the base table.
        assert!(matches!(
            check_against(&db, "SELECT node FROM disk ORDER BY util"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            check_against(
                &db,
                "SELECT node, MAX(util) FROM disk GROUP BY node ORDER BY time"
            ),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn static_check_rejects_impossible_comparisons() {
        let db = db();
        // Timestamp column vs bare integer: total_cmp falls back to rank
        // ordering, so this would silently match everything.
        assert!(matches!(
            check_against(&db, "SELECT * FROM disk WHERE time >= 100000"),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            check_against(&db, "SELECT * FROM disk WHERE node = 3"),
            Err(DbError::TypeMismatch { .. })
        ));
        // Numeric aggregate over a text column aggregates nothing.
        assert!(matches!(
            check_against(&db, "SELECT tier, SUM(node) FROM disk GROUP BY tier"),
            Err(DbError::TypeMismatch { .. })
        ));
        // …but COUNT over text is fine, and NULL literals defer to runtime.
        check_against(&db, "SELECT tier, COUNT(node) FROM disk GROUP BY tier").unwrap();
        check_against(&db, "SELECT * FROM disk WHERE node != NULL").unwrap();
    }

    #[test]
    fn static_check_with_unknown_typed_schema() {
        // A predicted schema (from declarations) types unseen captures as
        // Null = unknown; type-sensitive checks must then defer.
        let schema = Schema::new(vec![
            Column::new("node", ColumnType::Text),
            Column::new("disk_util", ColumnType::Null),
        ])
        .unwrap();
        let oracle = |t: &str| (t == "collectl").then(|| schema.clone());
        check_with(
            "SELECT node, MAX(disk_util) FROM collectl GROUP BY node",
            oracle,
        )
        .unwrap();
        check_with("SELECT * FROM collectl WHERE disk_util > 90", oracle).unwrap();
        assert!(matches!(
            check_with("SELECT ghost FROM collectl", oracle),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn select_rows_limit_helper() {
        let db = db();
        let t = db.query("SELECT * FROM disk LIMIT 0").unwrap();
        assert_eq!(t.row_count(), 0);
        let t = db.query("SELECT * FROM disk LIMIT 100").unwrap();
        assert_eq!(t.row_count(), 5);
    }

    /// The disk fixture plus an `owner` dimension table keyed by node.
    fn db_with_owner() -> Database {
        let mut db = db();
        let schema = Schema::new(vec![
            Column::new("node", ColumnType::Text),
            Column::new("team", ColumnType::Text),
        ])
        .unwrap();
        db.create_table("owner", schema).unwrap();
        for (node, team) in [("apache0", "web"), ("mysql0", "data"), ("ghost0", "ops")] {
            db.insert(
                "owner",
                vec![Value::Text(node.into()), Value::Text(team.into())],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn join_on_plain_and_qualified() {
        let db = db_with_owner();
        // Unqualified ON: the first column resolves on the left table, the
        // second on the right. `owner.node` collides with `disk.node` and
        // surfaces prefixed.
        let t = db
            .query("SELECT * FROM disk JOIN owner ON node = node")
            .unwrap();
        assert_eq!(t.name(), "disk_x_owner");
        let names: Vec<&str> = t
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(
            names,
            ["node", "tier", "util", "time", "owner_node", "team"]
        );
        // apache0 matches once, mysql0's three readings each match once.
        assert_eq!(t.row_count(), 4);
        // Qualified ON names the same join and may swap sides.
        for sql in [
            "SELECT * FROM disk JOIN owner ON disk.node = owner.node",
            "SELECT * FROM disk JOIN owner ON owner.node = disk.node",
        ] {
            assert_eq!(&db.query(sql).unwrap(), &t, "{sql}");
        }
        // Projections reach across both sides, and join rows follow
        // left-table order.
        let teams = db
            .query("SELECT node, team FROM disk JOIN owner ON node = node WHERE util > 90")
            .unwrap();
        assert_eq!(teams.row_count(), 2);
        assert_eq!(teams.cell(0, "team"), Some(&Value::Text("data".into())));
    }

    #[test]
    fn multi_key_group_by_and_multiple_aggregates() {
        let db = db();
        let t = db
            .query(
                "SELECT node, tier, COUNT(*), AVG(util), MAX(util) FROM disk \
                 GROUP BY node, tier ORDER BY node",
            )
            .unwrap();
        let names: Vec<&str> = t
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        // First agg on `util` keeps the bare name; the second falls back
        // to its labeled form.
        assert_eq!(names, ["node", "tier", "count", "util", "max_util"]);
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.cell(1, "node"), Some(&Value::Text("mysql0".into())));
        assert_eq!(t.cell(1, "tier"), Some(&Value::Text("3".into())));
        assert_eq!(t.cell(1, "count").and_then(Value::as_f64), Some(3.0));
        let avg = t.cell(1, "util").and_then(Value::as_f64).unwrap();
        assert!((avg - 65.666).abs() < 0.01);
        assert_eq!(t.cell(1, "max_util"), Some(&Value::Float(99.0)));
    }

    #[test]
    fn having_filters_groups() {
        let db = db();
        let t = db
            .query("SELECT node, MAX(util) FROM disk GROUP BY node HAVING util > 90")
            .unwrap();
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.cell(0, "node"), Some(&Value::Text("mysql0".into())));
        // HAVING sees result columns (keys included), not source columns.
        let k = db
            .query("SELECT node, COUNT(*) FROM disk GROUP BY node HAVING node = 'apache0'")
            .unwrap();
        assert_eq!(k.row_count(), 1);
        assert!(matches!(
            check_against(
                &db,
                "SELECT node, COUNT(*) FROM disk GROUP BY node HAVING util > 90"
            ),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn explain_prints_the_physical_plan() {
        let db = db();
        let plan = db
            .query("EXPLAIN SELECT node, util FROM disk WHERE util > 90 ORDER BY util DESC LIMIT 2")
            .unwrap();
        assert_eq!(plan.name(), "explain");
        let lines: Vec<String> = plan
            .column("plan")
            .unwrap()
            .iter()
            .map(Value::render)
            .collect();
        assert_eq!(
            lines,
            [
                "Scan disk rows=5 pred=util > 90 est=3 blocks[skip=0 take=0 eval=1] \
                 cols=[node, util]",
                "Sort util desc",
                "Limit 2",
            ]
        );
        // The join plan names its build side, chosen from row estimates.
        let db = db_with_owner();
        let join = db
            .query("EXPLAIN SELECT team FROM disk JOIN owner ON node = node")
            .unwrap();
        let text = join
            .column("plan")
            .unwrap()
            .iter()
            .map(Value::render)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            text.contains("HashJoin disk.node = owner.node build=right"),
            "{text}"
        );
    }

    #[test]
    fn optimizer_off_and_worker_legs_are_identical() {
        let db = db_with_owner();
        for sql in [
            "SELECT * FROM disk WHERE util > 2 ORDER BY util LIMIT 3",
            "SELECT node, team FROM disk JOIN owner ON node = node WHERE tier = 3",
            "SELECT node, tier, AVG(util) FROM disk GROUP BY node, tier HAVING util > 1",
        ] {
            let reference = db.query(sql).unwrap();
            for optimize in [true, false] {
                for workers in [0, 1, 2, 8] {
                    let got = db
                        .query_opts(sql, QueryOptions { workers, optimize })
                        .unwrap();
                    assert_eq!(
                        mscope_serdes::to_string(&got),
                        mscope_serdes::to_string(&reference),
                        "{sql} (optimize={optimize}, workers={workers})"
                    );
                }
            }
        }
    }

    #[test]
    fn sort_elision_matches_the_materialized_sort() {
        let db = db();
        // `time` is stored ascending, so the planner elides the sort; the
        // planner-off leg sorts for real. Both must agree exactly.
        let sql = "SELECT time, util FROM disk ORDER BY time LIMIT 4";
        let on = db.query(sql).unwrap();
        let off = db
            .query_opts(
                sql,
                QueryOptions {
                    workers: 0,
                    optimize: false,
                },
            )
            .unwrap();
        assert_eq!(on, off);
        let plan = db.query(&format!("EXPLAIN {sql}")).unwrap();
        let text = mscope_serdes::to_string(&plan);
        assert!(text.contains("elided: input already sorted"), "{text}");
        // Descending order over the same column is NOT elided.
        let desc = db
            .query("EXPLAIN SELECT time FROM disk ORDER BY time DESC")
            .unwrap();
        assert!(!mscope_serdes::to_string(&desc).contains("elided"));
        // Grouped results come out sorted by their first key, so ORDER BY
        // that key ascending is also free.
        let grouped = db
            .query("EXPLAIN SELECT node, COUNT(*) FROM disk GROUP BY node ORDER BY node")
            .unwrap();
        let text = mscope_serdes::to_string(&grouped);
        assert!(text.contains("elided"), "{text}");
    }
}
