//! The dynamic data warehouse itself.
//!
//! Per the paper (§III-C), mScopeDB keeps **four static tables** of
//! loading-metadata — experiments, nodes, monitors, and log files — plus
//! **dynamically created tables** for the monitoring data that
//! mScopeDataTransformer produces on the fly.

use crate::table::{Column, Schema, Table};
use crate::value::{ColumnType, Value};
use crate::DbError;
use std::collections::BTreeMap;

/// Names of the four static metadata tables.
pub const STATIC_TABLES: [&str; 4] = ["experiments", "nodes", "monitors", "log_files"];

/// The mScopeDB warehouse: static metadata plus dynamic data tables.
///
/// # Examples
///
/// ```
/// use mscope_db::{Column, ColumnType, Database, Schema, Value};
///
/// let mut db = Database::new();
/// let schema = Schema::new(vec![
///     Column::new("time_us", ColumnType::Int),
///     Column::new("disk_util", ColumnType::Float),
/// ])?;
/// db.create_table("collectl_disk_mysql0", schema)?;
/// db.insert("collectl_disk_mysql0", vec![Value::Int(0), Value::Float(97.0)])?;
/// assert_eq!(db.table("collectl_disk_mysql0").unwrap().row_count(), 1);
/// # Ok::<(), mscope_db::DbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}
mscope_serdes::json_struct!(Database { tables });

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates a warehouse with the four static metadata tables already in
    /// place.
    pub fn new() -> Database {
        let mut tables = BTreeMap::new();
        let experiments = Schema::new(vec![
            Column::new("experiment_id", ColumnType::Int),
            Column::new("name", ColumnType::Text),
            Column::new("users", ColumnType::Int),
            Column::new("duration_ms", ColumnType::Int),
            Column::new("seed", ColumnType::Int),
        ])
        .expect("static schema is valid");
        let nodes = Schema::new(vec![
            Column::new("node", ColumnType::Text),
            Column::new("tier", ColumnType::Int),
            Column::new("kind", ColumnType::Text),
            Column::new("cores", ColumnType::Int),
            Column::new("workers", ColumnType::Int),
        ])
        .expect("static schema is valid");
        let monitors = Schema::new(vec![
            Column::new("monitor_id", ColumnType::Text),
            Column::new("node", ColumnType::Text),
            Column::new("tool", ColumnType::Text),
            Column::new("kind", ColumnType::Text),
            Column::new("period_ms", ColumnType::Int),
        ])
        .expect("static schema is valid");
        let log_files = Schema::new(vec![
            Column::new("path", ColumnType::Text),
            Column::new("node", ColumnType::Text),
            Column::new("monitor_id", ColumnType::Text),
            Column::new("format", ColumnType::Text),
            Column::new("bytes", ColumnType::Int),
        ])
        .expect("static schema is valid");
        tables.insert(
            "experiments".to_string(),
            Table::new("experiments", experiments),
        );
        tables.insert("nodes".to_string(), Table::new("nodes", nodes));
        tables.insert("monitors".to_string(), Table::new("monitors", monitors));
        tables.insert("log_files".to_string(), Table::new("log_files", log_files));
        Database { tables }
    }

    /// Creates a dynamic table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] if the name is taken (including by a static
    /// table).
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        self.tables
            .insert(name.to_string(), Table::new(name, schema));
        Ok(())
    }

    /// Creates the table if absent, or verifies the schema matches if
    /// present (idempotent ingest); returns whether it was created.
    ///
    /// # Errors
    ///
    /// [`DbError::SchemaMismatch`] if the table exists with a different
    /// schema.
    pub fn ensure_table(&mut self, name: &str, schema: Schema) -> Result<bool, DbError> {
        match self.tables.get(name) {
            None => {
                self.tables
                    .insert(name.to_string(), Table::new(name, schema));
                Ok(true)
            }
            Some(t) if *t.schema() == schema => Ok(false),
            Some(t) => Err(DbError::SchemaMismatch {
                table: name.to_string(),
                existing: t.schema().to_string(),
                incoming: schema.to_string(),
            }),
        }
    }

    /// Inserts a row into a table.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] or any [`Table::push_row`] error.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), DbError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?
            .push_row(row)
    }

    /// Bulk insert.
    ///
    /// # Errors
    ///
    /// As [`Database::insert`]; stops at the first bad row.
    pub fn insert_rows<I>(&mut self, table: &str, rows: I) -> Result<usize, DbError>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let mut n = 0;
        for row in rows {
            t.push_row(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Bulk insert with one table lookup and one validation pass for the
    /// whole batch ([`Table::push_batch`]): either every row lands or none
    /// does. Returns the number of rows inserted.
    ///
    /// This is the importer's hot path — per-row [`Database::insert`] pays
    /// a name lookup and a schema walk per tuple, which dominates load time
    /// for wide monitor tables.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`], or the first [`Table::push_batch`]
    /// validation error (table unchanged).
    pub fn insert_batch(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, DbError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?
            .push_batch(rows)
    }

    /// Replaces a dynamic table wholesale, keeping the warehouse name ↔
    /// table invariant. This is the schema-migration primitive of the
    /// streaming ingester: when a later chunk widens an inferred column
    /// type (the batch pipeline would simply have inferred the wider type
    /// up front), the ingester rebuilds the table under the new schema and
    /// swaps it in here.
    ///
    /// # Errors
    ///
    /// [`DbError::BadQuery`] when the table is one of the static metadata
    /// tables ([`STATIC_TABLES`]) — their schemas are fixed by the paper's
    /// warehouse design and never migrate.
    pub fn replace_table(&mut self, table: Table) -> Result<(), DbError> {
        let name = table.name();
        if STATIC_TABLES.contains(&name) {
            return Err(DbError::BadQuery(format!(
                "static metadata table `{name}` cannot be replaced"
            )));
        }
        self.tables.insert(name.to_string(), table);
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks up a table, erroring when absent (for query pipelines).
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`].
    pub fn require(&self, name: &str) -> Result<&Table, DbError> {
        self.table(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// All table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Names of dynamically created tables only.
    pub fn dynamic_table_names(&self) -> Vec<&str> {
        self.tables
            .keys()
            .map(String::as_str)
            .filter(|n| !STATIC_TABLES.contains(n))
            .collect()
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::row_count).sum()
    }

    /// Registers an experiment in the static metadata.
    ///
    /// # Errors
    ///
    /// Propagates row-shape errors (should not occur with this signature).
    pub fn register_experiment(
        &mut self,
        id: i64,
        name: &str,
        users: i64,
        duration_ms: i64,
        seed: i64,
    ) -> Result<(), DbError> {
        self.insert(
            "experiments",
            vec![
                id.into(),
                name.into(),
                users.into(),
                duration_ms.into(),
                seed.into(),
            ],
        )
    }

    /// Registers a node in the static metadata.
    ///
    /// # Errors
    ///
    /// Propagates row-shape errors.
    pub fn register_node(
        &mut self,
        node: &str,
        tier: i64,
        kind: &str,
        cores: i64,
        workers: i64,
    ) -> Result<(), DbError> {
        self.insert(
            "nodes",
            vec![
                node.into(),
                tier.into(),
                kind.into(),
                cores.into(),
                workers.into(),
            ],
        )
    }

    /// Registers a monitor in the static metadata.
    ///
    /// # Errors
    ///
    /// Propagates row-shape errors.
    pub fn register_monitor(
        &mut self,
        monitor_id: &str,
        node: &str,
        tool: &str,
        kind: &str,
        period_ms: i64,
    ) -> Result<(), DbError> {
        self.insert(
            "monitors",
            vec![
                monitor_id.into(),
                node.into(),
                tool.into(),
                kind.into(),
                period_ms.into(),
            ],
        )
    }

    /// Registers a log file in the static metadata.
    ///
    /// # Errors
    ///
    /// Propagates row-shape errors.
    pub fn register_log_file(
        &mut self,
        path: &str,
        node: &str,
        monitor_id: &str,
        format: &str,
        bytes: i64,
    ) -> Result<(), DbError> {
        self.insert(
            "log_files",
            vec![
                path.into(),
                node.into(),
                monitor_id.into(),
                format.into(),
                bytes.into(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_exist() {
        let db = Database::new();
        for name in STATIC_TABLES {
            assert!(db.table(name).is_some(), "missing static table {name}");
        }
        assert!(db.dynamic_table_names().is_empty());
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn create_insert_query() {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("t", ColumnType::Int),
            Column::new("v", ColumnType::Float),
        ])
        .unwrap();
        db.create_table("m", schema.clone()).unwrap();
        assert!(matches!(
            db.create_table("m", schema.clone()),
            Err(DbError::TableExists(_))
        ));
        assert!(matches!(
            db.create_table("nodes", schema.clone()),
            Err(DbError::TableExists(_))
        ));
        let n = db
            .insert_rows(
                "m",
                (0..5).map(|i| vec![Value::Int(i), Value::Float(i as f64)]),
            )
            .unwrap();
        assert_eq!(n, 5);
        assert_eq!(db.require("m").unwrap().row_count(), 5);
        assert!(matches!(db.require("zzz"), Err(DbError::NoSuchTable(_))));
        assert_eq!(db.dynamic_table_names(), vec!["m"]);
    }

    #[test]
    fn insert_batch_atomic_and_counted() {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("t", ColumnType::Int),
            Column::new("v", ColumnType::Float),
        ])
        .unwrap();
        db.create_table("m", schema).unwrap();
        let n = db
            .insert_batch(
                "m",
                (0..100)
                    .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
                    .collect(),
            )
            .unwrap();
        assert_eq!(n, 100);
        // One bad row rejects the whole batch.
        let err = db.insert_batch(
            "m",
            vec![
                vec![Value::Int(1), Value::Float(1.0)],
                vec![Value::Text("x".into()), Value::Float(2.0)],
            ],
        );
        assert!(matches!(err, Err(DbError::TypeMismatch { .. })));
        assert_eq!(db.require("m").unwrap().row_count(), 100);
        assert!(matches!(
            db.insert_batch("ghost", vec![]),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn replace_table_swaps_dynamic_rejects_static() {
        let mut db = Database::new();
        let schema = Schema::new(vec![Column::new("a", ColumnType::Int)]).unwrap();
        db.create_table("m", schema).unwrap();
        db.insert("m", vec![Value::Int(1)]).unwrap();
        // Swap in a rebuilt table under a wider schema (Int → Float).
        let wide = Schema::new(vec![Column::new("a", ColumnType::Float)]).unwrap();
        let mut t = Table::new("m", wide);
        t.push_row(vec![Value::Float(1.0)]).unwrap();
        t.push_row(vec![Value::Float(2.5)]).unwrap();
        db.replace_table(t).unwrap();
        let got = db.require("m").unwrap();
        assert_eq!(got.row_count(), 2);
        assert_eq!(got.cell(1, "a"), Some(&Value::Float(2.5)));
        // Replacing also creates when absent (the ingester's first swap
        // after an early migration may precede any ensure_table call).
        let fresh = Table::new("m2", Schema::default());
        db.replace_table(fresh).unwrap();
        assert!(db.table("m2").is_some());
        // Static metadata tables are immutable in shape.
        let bad = Table::new("monitors", Schema::default());
        assert!(matches!(db.replace_table(bad), Err(DbError::BadQuery(_))));
        assert_eq!(db.table("monitors").unwrap().schema().len(), 5);
    }

    #[test]
    fn chunked_appends_match_one_shot_load() {
        // The streaming ingester appends in chunks; the per-block zone maps
        // and the sorted-on-append flag must come out exactly as a one-shot
        // batch load leaves them (ISSUE: "sorted-on-append flag must
        // survive chunked appends").
        let schema = || {
            Schema::new(vec![
                Column::new("t", ColumnType::Timestamp),
                Column::new("v", ColumnType::Float),
            ])
            .unwrap()
        };
        let rows: Vec<Vec<Value>> = (0..5000)
            .map(|i| {
                vec![
                    Value::Timestamp(i * 10),
                    Value::Float(((i % 97) as f64) / 3.0),
                ]
            })
            .collect();
        for chunk in [1usize, 64, 4096] {
            let mut db_chunked = Database::new();
            db_chunked.create_table("m", schema()).unwrap();
            for c in rows.chunks(chunk) {
                db_chunked.insert_batch("m", c.to_vec()).unwrap();
            }
            let mut db_batch = Database::new();
            db_batch.create_table("m", schema()).unwrap();
            db_batch.insert_batch("m", rows.clone()).unwrap();
            let chunked = db_chunked.require("m").unwrap();
            let batch = db_batch.require("m").unwrap();
            assert_eq!(chunked, batch, "chunk={chunk}");
            // Table equality excludes the index; compare it explicitly —
            // zone maps and the sorted flag must match the one-shot load.
            assert_eq!(chunked.table_index(), batch.table_index(), "chunk={chunk}");
            let t_idx = chunked.table_index().col(0).unwrap();
            assert!(t_idx.sorted(), "time column sorted through chunk={chunk}");
        }
        // An out-of-order row arriving mid-stream clears the flag across a
        // chunk boundary the same way the one-shot load does.
        let mut a = Database::new();
        a.create_table("m", schema()).unwrap();
        let mut shuffled = rows.clone();
        shuffled.swap(100, 4900);
        for c in shuffled.chunks(64) {
            a.insert_batch("m", c.to_vec()).unwrap();
        }
        let mut b = Database::new();
        b.create_table("m", schema()).unwrap();
        b.insert_batch("m", shuffled).unwrap();
        assert_eq!(a.require("m").unwrap(), b.require("m").unwrap());
        assert_eq!(
            a.require("m").unwrap().table_index(),
            b.require("m").unwrap().table_index()
        );
        assert!(!a
            .require("m")
            .unwrap()
            .table_index()
            .col(0)
            .unwrap()
            .sorted());
    }

    #[test]
    fn ensure_table_idempotent() {
        let mut db = Database::new();
        let schema = Schema::new(vec![Column::new("a", ColumnType::Int)]).unwrap();
        assert!(db.ensure_table("x", schema.clone()).unwrap());
        assert!(!db.ensure_table("x", schema).unwrap());
        let other = Schema::new(vec![Column::new("a", ColumnType::Text)]).unwrap();
        assert!(matches!(
            db.ensure_table("x", other),
            Err(DbError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn metadata_registration() {
        let mut db = Database::new();
        db.register_experiment(1, "scenario_db_io", 8000, 420_000, 42)
            .unwrap();
        db.register_node("mysql0", 3, "mysql", 2, 50).unwrap();
        db.register_monitor("collectl-mysql0", "mysql0", "collectl", "resource", 50)
            .unwrap();
        db.register_log_file(
            "/var/log/collectl/mysql0.csv",
            "mysql0",
            "collectl-mysql0",
            "csv",
            1024,
        )
        .unwrap();
        assert_eq!(db.table("experiments").unwrap().row_count(), 1);
        assert_eq!(db.table("nodes").unwrap().row_count(), 1);
        assert_eq!(db.table("monitors").unwrap().row_count(), 1);
        assert_eq!(db.table("log_files").unwrap().row_count(), 1);
        assert_eq!(db.total_rows(), 4);
    }

    #[test]
    fn insert_into_missing_table_errors() {
        let mut db = Database::new();
        assert!(matches!(
            db.insert("ghost", vec![Value::Int(1)]),
            Err(DbError::NoSuchTable(_))
        ));
    }
}

/// JSON persistence for the warehouse (a dynamic data warehouse should
/// survive the session that built it).
impl Database {
    /// Serializes the entire warehouse — static and dynamic tables — to
    /// JSON.
    ///
    /// # Errors
    ///
    /// Serialization failure (should not occur for valid warehouses).
    pub fn to_json(&self) -> Result<String, DbError> {
        Ok(mscope_serdes::to_string(self))
    }

    /// Restores a warehouse from [`Database::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`DbError::BadQuery`] on malformed input.
    pub fn from_json(json: &str) -> Result<Database, DbError> {
        mscope_serdes::from_str(json).map_err(|e| DbError::BadQuery(format!("deserialize: {e}")))
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut db = Database::new();
        db.register_node("mysql0", 3, "mysql", 2, 50).unwrap();
        let schema = Schema::new(vec![
            Column::new("t", ColumnType::Timestamp),
            Column::new("v", ColumnType::Float),
        ])
        .unwrap();
        db.create_table("m", schema).unwrap();
        db.insert("m", vec![Value::Timestamp(50_000), Value::Float(97.5)])
            .unwrap();
        db.insert("m", vec![Value::Null, Value::Float(1.25)])
            .unwrap();

        let json = db.to_json().unwrap();
        let back = Database::from_json(&json).unwrap();
        assert_eq!(back, db);
        assert_eq!(
            back.require("m").unwrap().cell(0, "v"),
            Some(&Value::Float(97.5))
        );
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            Database::from_json("not json"),
            Err(DbError::BadQuery(_))
        ));
    }
}
