//! Error type for mScopeDB operations.

use crate::value::ColumnType;
use std::error::Error;
use std::fmt;

/// Errors returned by warehouse operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// A schema contained two columns with the same name.
    DuplicateColumn(String),
    /// A row's width did not match the table schema.
    Arity {
        /// Table being written.
        table: String,
        /// Schema width.
        expected: usize,
        /// Row width.
        got: usize,
    },
    /// A value's type is not admitted by its column.
    TypeMismatch {
        /// Table being written.
        table: String,
        /// Offending column.
        column: String,
        /// Column type.
        expected: ColumnType,
        /// Value type.
        got: ColumnType,
    },
    /// Table already exists.
    TableExists(String),
    /// Table does not exist.
    NoSuchTable(String),
    /// Column does not exist.
    NoSuchColumn(String),
    /// An existing table's schema conflicts with the incoming one.
    SchemaMismatch {
        /// Table name.
        table: String,
        /// Schema already in the warehouse.
        existing: String,
        /// Schema being loaded.
        incoming: String,
    },
    /// Malformed query parameters.
    BadQuery(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateColumn(c) => write!(f, "duplicate column name `{c}`"),
            DbError::Arity {
                table,
                expected,
                got,
            } => {
                write!(
                    f,
                    "row width {got} does not match schema width {expected} of `{table}`"
                )
            }
            DbError::TypeMismatch {
                table,
                column,
                expected,
                got,
            } => write!(
                f,
                "value of type {got} not admitted by column `{column}` ({expected}) of `{table}`"
            ),
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            DbError::NoSuchColumn(c) => write!(f, "no such column `{c}`"),
            DbError::SchemaMismatch {
                table,
                existing,
                incoming,
            } => write!(
                f,
                "schema mismatch for `{table}`: existing {existing}, incoming {incoming}"
            ),
            DbError::BadQuery(m) => write!(f, "bad query: {m}"),
        }
    }
}

impl Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<DbError> = vec![
            DbError::DuplicateColumn("x".into()),
            DbError::Arity {
                table: "t".into(),
                expected: 2,
                got: 3,
            },
            DbError::TypeMismatch {
                table: "t".into(),
                column: "c".into(),
                expected: ColumnType::Int,
                got: ColumnType::Text,
            },
            DbError::TableExists("t".into()),
            DbError::NoSuchTable("t".into()),
            DbError::NoSuchColumn("c".into()),
            DbError::SchemaMismatch {
                table: "t".into(),
                existing: "(a int)".into(),
                incoming: "(a text)".into(),
            },
            DbError::BadQuery("nope".into()),
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with('`'));
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(DbError::NoSuchTable("x".into()));
    }
}
