//! Compiled, indexed query execution over columnar tables.
//!
//! The naive [`Predicate::eval`](crate::Predicate::eval) path re-resolves
//! column names per row × per leaf (`Schema::index_of` is a linear scan).
//! This module is the fast path behind `Table::filter`/`select`/joins:
//!
//! * [`CompiledPredicate`] binds column names to column slices and clones
//!   each comparison value **once** per query;
//! * [`TableIndex`] keeps per-block zone maps (min/max/null counts per
//!   [`DEFAULT_BLOCK_ROWS`]-row block) over numeric and timestamp columns,
//!   plus a sorted flag maintained on append, so window predicates skip
//!   whole blocks and binary-search within the survivors;
//! * [`KeyIndex`] is a borrowed-key hash index for joins, built once from
//!   the typed column slice;
//! * [`scan_blocks`] fans block scans out over a [`WorkQueue`] with an
//!   in-block-order merge, so output is byte-identical for any worker
//!   count.
//!
//! Everything here is result-identical to the naive evaluators, which the
//! query layer keeps as reference oracles (`filter_naive`,
//! `inner_join_naive`).

use crate::table::{Schema, Table};
use crate::value::{ColumnType, Value};
use crate::Predicate;
use mscope_sim::WorkQueue;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Rows per zone-map block. Small enough that a skipped block saves little
/// waste on the boundary, large enough that per-block metadata stays tiny
/// (two `Value`s and two counters per column per 1024 rows).
pub const DEFAULT_BLOCK_ROWS: usize = 1024;

/// Row-count threshold below which automatic worker selection stays
/// serial: thread spawn + merge overhead beats the scan itself on small
/// tables.
pub const PARALLEL_MIN_ROWS: usize = 1 << 16;

/// Per-block min/max/null statistics for one indexed column (a zone map
/// entry). `min`/`max` are over non-null values and are `Value::Null`
/// until one is seen.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BlockStat {
    min: Value,
    max: Value,
    nulls: usize,
    len: usize,
}

/// What a zone map can prove about a predicate over one whole block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// No row in the block matches: skip it.
    AllFalse,
    /// Cannot decide from the stats: evaluate row by row.
    Mixed,
    /// Every row in the block matches: take it without evaluating.
    AllTrue,
}

fn combine_and(a: Verdict, b: Verdict) -> Verdict {
    use Verdict::*;
    match (a, b) {
        (AllFalse, _) | (_, AllFalse) => AllFalse,
        (AllTrue, AllTrue) => AllTrue,
        _ => Mixed,
    }
}

fn combine_or(a: Verdict, b: Verdict) -> Verdict {
    use Verdict::*;
    match (a, b) {
        (AllTrue, _) | (_, AllTrue) => AllTrue,
        (AllFalse, AllFalse) => AllFalse,
        _ => Mixed,
    }
}

fn negate(v: Verdict) -> Verdict {
    match v {
        Verdict::AllFalse => Verdict::AllTrue,
        Verdict::AllTrue => Verdict::AllFalse,
        Verdict::Mixed => Verdict::Mixed,
    }
}

impl BlockStat {
    fn empty() -> BlockStat {
        BlockStat {
            min: Value::Null,
            max: Value::Null,
            nulls: 0,
            len: 0,
        }
    }

    fn add(&mut self, v: &Value) {
        self.len += 1;
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        if self.min.is_null() || v.total_cmp(&self.min) == Ordering::Less {
            self.min = v.clone();
        }
        if self.max.is_null() || v.total_cmp(&self.max) == Ordering::Greater {
            self.max = v.clone();
        }
    }

    /// Verdict for `cell <op> v` over this block. Null cells never match,
    /// so `AllTrue` additionally requires a null-free block.
    fn verdict_cmp(&self, op: CmpOp, v: &Value) -> Verdict {
        if self.nulls == self.len {
            return Verdict::AllFalse;
        }
        use Ordering::{Equal, Greater, Less};
        let vs_min = v.total_cmp(&self.min);
        let vs_max = v.total_cmp(&self.max);
        let no_nulls = self.nulls == 0;
        match op {
            CmpOp::Eq => {
                if vs_min == Less || vs_max == Greater {
                    Verdict::AllFalse
                } else if no_nulls && vs_min == Equal && vs_max == Equal {
                    Verdict::AllTrue
                } else {
                    Verdict::Mixed
                }
            }
            CmpOp::Ne => {
                if vs_min == Equal && vs_max == Equal {
                    Verdict::AllFalse
                } else if no_nulls && (vs_min == Less || vs_max == Greater) {
                    Verdict::AllTrue
                } else {
                    Verdict::Mixed
                }
            }
            CmpOp::Lt => {
                if vs_min != Greater {
                    Verdict::AllFalse // v <= min: nothing is below v
                } else if no_nulls && vs_max == Greater {
                    Verdict::AllTrue // max < v
                } else {
                    Verdict::Mixed
                }
            }
            CmpOp::Le => {
                if vs_min == Less {
                    Verdict::AllFalse // v < min
                } else if no_nulls && vs_max != Less {
                    Verdict::AllTrue // max <= v
                } else {
                    Verdict::Mixed
                }
            }
            CmpOp::Gt => {
                if vs_max != Less {
                    Verdict::AllFalse // v >= max
                } else if no_nulls && vs_min == Less {
                    Verdict::AllTrue // min > v
                } else {
                    Verdict::Mixed
                }
            }
            CmpOp::Ge => {
                if vs_max == Greater {
                    Verdict::AllFalse // v > max
                } else if no_nulls && vs_min != Greater {
                    Verdict::AllTrue // min >= v
                } else {
                    Verdict::Mixed
                }
            }
        }
    }

    /// Verdict for the half-open window `lo <= cell < hi`.
    fn verdict_between(&self, lo: &Value, hi: &Value) -> Verdict {
        combine_and(
            self.verdict_cmp(CmpOp::Ge, lo),
            self.verdict_cmp(CmpOp::Lt, hi),
        )
    }
}

/// Zone maps and the sorted flag for one column.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ColumnIndex {
    blocks: Vec<BlockStat>,
    sorted: bool,
}

impl ColumnIndex {
    /// Only numeric and timestamp columns carry zone maps: their admitted
    /// values are totally ordered by `total_cmp` and are what window
    /// predicates range over. `None` for other types.
    fn for_type(ty: ColumnType) -> Option<ColumnIndex> {
        matches!(
            ty,
            ColumnType::Int | ColumnType::Float | ColumnType::Timestamp
        )
        .then(|| ColumnIndex {
            blocks: Vec::new(),
            sorted: true,
        })
    }

    fn note(&mut self, prev: Option<&Value>, v: &Value, block_rows: usize) {
        if let Some(p) = prev {
            if p.total_cmp(v) == Ordering::Greater {
                self.sorted = false;
            }
        }
        if self.blocks.last().is_none_or(|b| b.len >= block_rows) {
            self.blocks.push(BlockStat::empty());
        }
        if let Some(b) = self.blocks.last_mut() {
            b.add(v);
        }
    }

    /// `true` while every appended cell has been `>=` its predecessor
    /// under `total_cmp` (nulls sort first, so a null after data clears
    /// the flag — exactly the property binary search needs).
    pub(crate) fn sorted(&self) -> bool {
        self.sorted
    }

    fn block(&self, b: usize) -> Option<&BlockStat> {
        self.blocks.get(b)
    }
}

/// Per-table block metadata, maintained incrementally on append and
/// rebuilt wholesale by the query layer's gather/projection constructors.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TableIndex {
    block_rows: usize,
    cols: Vec<Option<ColumnIndex>>,
}

impl TableIndex {
    /// An empty index for a table with this schema.
    pub(crate) fn new(schema: &Schema, block_rows: usize) -> TableIndex {
        TableIndex {
            block_rows: block_rows.max(1),
            cols: schema
                .columns()
                .iter()
                .map(|c| ColumnIndex::for_type(c.ty))
                .collect(),
        }
    }

    /// Rebuilds the index from existing column data.
    pub(crate) fn build(schema: &Schema, cols: &[Vec<Value>], block_rows: usize) -> TableIndex {
        let mut idx = TableIndex::new(schema, block_rows);
        for (ci, col) in cols.iter().enumerate() {
            let mut prev: Option<&Value> = None;
            for v in col {
                idx.note(ci, prev, v);
                prev = Some(v);
            }
        }
        idx
    }

    /// Records one appended cell for column `ci`; `prev` is the cell that
    /// was last in that column before the append (for the sorted flag).
    pub(crate) fn note(&mut self, ci: usize, prev: Option<&Value>, v: &Value) {
        let block_rows = self.block_rows;
        if let Some(Some(cidx)) = self.cols.get_mut(ci) {
            cidx.note(prev, v, block_rows);
        }
    }

    pub(crate) fn block_rows(&self) -> usize {
        self.block_rows
    }

    pub(crate) fn col(&self, ci: usize) -> Option<&ColumnIndex> {
        self.cols.get(ci).and_then(Option::as_ref)
    }
}

/// Typed comparison operators for compiled leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub(crate) fn ok(self, o: Ordering) -> bool {
        match self {
            CmpOp::Eq => o == Ordering::Equal,
            CmpOp::Ne => o != Ordering::Equal,
            CmpOp::Lt => o == Ordering::Less,
            CmpOp::Le => o != Ordering::Greater,
            CmpOp::Gt => o == Ordering::Greater,
            CmpOp::Ge => o != Ordering::Less,
        }
    }
}

/// A compiled predicate node: column names already resolved to slices.
enum Node<'t> {
    True,
    /// A leaf whose column does not exist — comparison is false for every
    /// row (matching the naive "filters are exploratory" semantics).
    False,
    Cmp {
        col: &'t [Value],
        idx: Option<&'t ColumnIndex>,
        op: CmpOp,
        v: Value,
    },
    Between {
        col: &'t [Value],
        idx: Option<&'t ColumnIndex>,
        lo: Value,
        hi: Value,
    },
    And(Vec<Node<'t>>),
    Or(Vec<Node<'t>>),
    Not(Box<Node<'t>>),
}

/// First index whose cell is `>= v` in a sorted column.
fn first_not_less(col: &[Value], v: &Value) -> usize {
    col.partition_point(|c| c.total_cmp(v) == Ordering::Less)
}

/// First index whose cell is `> v` in a sorted column.
fn first_greater(col: &[Value], v: &Value) -> usize {
    col.partition_point(|c| c.total_cmp(v) != Ordering::Greater)
}

impl<'t> Node<'t> {
    fn compile(table: &'t Table, pred: &Predicate) -> Node<'t> {
        let leaf = |c: &str, op: CmpOp, v: &Value| match table.schema().index_of(c) {
            None => Node::False,
            Some(ci) => Node::Cmp {
                col: table.col(ci),
                idx: table.table_index().col(ci),
                op,
                v: v.clone(),
            },
        };
        match pred {
            Predicate::True => Node::True,
            Predicate::Eq(c, v) => leaf(c, CmpOp::Eq, v),
            Predicate::Ne(c, v) => leaf(c, CmpOp::Ne, v),
            Predicate::Lt(c, v) => leaf(c, CmpOp::Lt, v),
            Predicate::Le(c, v) => leaf(c, CmpOp::Le, v),
            Predicate::Gt(c, v) => leaf(c, CmpOp::Gt, v),
            Predicate::Ge(c, v) => leaf(c, CmpOp::Ge, v),
            Predicate::Between(c, lo, hi) => match table.schema().index_of(c) {
                None => Node::False,
                Some(ci) => Node::Between {
                    col: table.col(ci),
                    idx: table.table_index().col(ci),
                    lo: lo.clone(),
                    hi: hi.clone(),
                },
            },
            Predicate::And(ps) => Node::And(ps.iter().map(|p| Node::compile(table, p)).collect()),
            Predicate::Or(ps) => Node::Or(ps.iter().map(|p| Node::compile(table, p)).collect()),
            Predicate::Not(p) => Node::Not(Box::new(Node::compile(table, p))),
        }
    }

    fn eval(&self, i: usize) -> bool {
        match self {
            Node::True => true,
            Node::False => false,
            Node::Cmp { col, op, v, .. } => {
                let c = &col[i];
                !c.is_null() && op.ok(c.total_cmp(v))
            }
            Node::Between { col, lo, hi, .. } => {
                let c = &col[i];
                !c.is_null()
                    && c.total_cmp(lo) != Ordering::Less
                    && c.total_cmp(hi) == Ordering::Less
            }
            Node::And(ns) => ns.iter().all(|n| n.eval(i)),
            Node::Or(ns) => ns.iter().any(|n| n.eval(i)),
            Node::Not(n) => !n.eval(i),
        }
    }

    fn verdict(&self, b: usize) -> Verdict {
        match self {
            Node::True => Verdict::AllTrue,
            Node::False => Verdict::AllFalse,
            Node::Cmp { idx, op, v, .. } => idx
                .and_then(|ci| ci.block(b))
                .map_or(Verdict::Mixed, |s| s.verdict_cmp(*op, v)),
            Node::Between { idx, lo, hi, .. } => idx
                .and_then(|ci| ci.block(b))
                .map_or(Verdict::Mixed, |s| s.verdict_between(lo, hi)),
            Node::And(ns) => {
                let mut acc = Verdict::AllTrue;
                for n in ns {
                    acc = combine_and(acc, n.verdict(b));
                    if acc == Verdict::AllFalse {
                        break;
                    }
                }
                acc
            }
            Node::Or(ns) => {
                let mut acc = Verdict::AllFalse;
                for n in ns {
                    acc = combine_or(acc, n.verdict(b));
                    if acc == Verdict::AllTrue {
                        break;
                    }
                }
                acc
            }
            Node::Not(n) => negate(n.verdict(b)),
        }
    }

    /// Conservative `[lo, hi)` superset of matching rows, from binary
    /// search on sorted columns. Unsorted / unindexed leaves yield the
    /// full range.
    fn bounds(&self, n: usize) -> (usize, usize) {
        match self {
            Node::True => (0, n),
            Node::False => (0, 0),
            Node::Cmp { col, idx, op, v } => {
                if !idx.is_some_and(ColumnIndex::sorted) {
                    return (0, n);
                }
                match op {
                    CmpOp::Eq => (first_not_less(col, v), first_greater(col, v)),
                    CmpOp::Lt => (0, first_not_less(col, v)),
                    CmpOp::Le => (0, first_greater(col, v)),
                    CmpOp::Gt => (first_greater(col, v), n),
                    CmpOp::Ge => (first_not_less(col, v), n),
                    CmpOp::Ne => (0, n),
                }
            }
            Node::Between { col, idx, lo, hi } => {
                if !idx.is_some_and(ColumnIndex::sorted) {
                    return (0, n);
                }
                (first_not_less(col, lo), first_not_less(col, hi))
            }
            Node::And(ns) => ns.iter().fold((0, n), |(lo, hi), nd| {
                let (l2, h2) = nd.bounds(n);
                (lo.max(l2), hi.min(h2))
            }),
            Node::Or(ns) => {
                if ns.is_empty() {
                    return (0, 0);
                }
                ns.iter().fold((n, 0), |(lo, hi), nd| {
                    let (l2, h2) = nd.bounds(n);
                    (lo.min(l2), hi.max(h2))
                })
            }
            Node::Not(_) => (0, n),
        }
    }
}

/// A [`Predicate`](crate::Predicate) compiled against one table: column
/// names resolved to column slices, comparison values bound once, zone
/// maps and sorted-column bounds attached. Result-identical to the naive
/// row-at-a-time [`Predicate::eval`](crate::Predicate::eval).
///
/// # Examples
///
/// ```
/// use mscope_db::{Column, ColumnType, CompiledPredicate, Predicate, Schema, Table, Value};
///
/// let schema = Schema::new(vec![Column::new("t", ColumnType::Int)])?;
/// let mut table = Table::new("m", schema);
/// for i in 0..100 {
///     table.push_row(vec![Value::Int(i)])?;
/// }
/// let pred = Predicate::Between("t".into(), Value::Int(10), Value::Int(13));
/// let compiled = CompiledPredicate::compile(&table, &pred);
/// assert_eq!(compiled.matching_rows(), vec![10, 11, 12]);
/// # Ok::<(), mscope_db::DbError>(())
/// ```
pub struct CompiledPredicate<'t> {
    nrows: usize,
    block_rows: usize,
    node: Node<'t>,
}

impl<'t> CompiledPredicate<'t> {
    /// Compiles `pred` against `table`. Cost is one `index_of` per leaf —
    /// paid once, not per row.
    pub fn compile(table: &'t Table, pred: &Predicate) -> CompiledPredicate<'t> {
        CompiledPredicate {
            nrows: table.row_count(),
            block_rows: table.table_index().block_rows(),
            node: Node::compile(table, pred),
        }
    }

    /// Evaluates row `i` (must be a valid row index of the compiled
    /// table).
    pub fn eval(&self, i: usize) -> bool {
        self.node.eval(i)
    }

    fn bounds(&self) -> (usize, usize) {
        let (lo, hi) = self.node.bounds(self.nrows);
        (lo.min(self.nrows), hi.min(self.nrows))
    }

    /// All matching row indices, ascending (serial scan).
    pub fn matching_rows(&self) -> Vec<usize> {
        self.matching_rows_with(1)
    }

    /// All matching row indices, ascending. `workers == 0` picks the
    /// worker count automatically (serial below [`PARALLEL_MIN_ROWS`]
    /// candidate rows); **every** worker count produces identical output,
    /// because blocks are merged in block order.
    pub fn matching_rows_with(&self, workers: usize) -> Vec<usize> {
        let (lo, hi) = self.bounds();
        if lo >= hi {
            return Vec::new();
        }
        let b0 = lo / self.block_rows;
        let b1 = (hi - 1) / self.block_rows + 1;
        let workers = resolve_workers(workers, hi - lo);
        let per_block = scan_blocks(b1 - b0, workers, |rel| {
            let b = b0 + rel;
            let s = (b * self.block_rows).max(lo);
            let e = ((b + 1) * self.block_rows).min(hi);
            match self.node.verdict(b) {
                Verdict::AllFalse => Vec::new(),
                Verdict::AllTrue => (s..e).collect(),
                Verdict::Mixed => (s..e).filter(|&i| self.node.eval(i)).collect(),
            }
        });
        let mut out = Vec::new();
        for mut v in per_block {
            out.append(&mut v);
        }
        out
    }

    /// Estimates the scan's output from statistics alone — sorted-column
    /// bounds plus per-block zone-map verdicts — without touching a row.
    /// Proven blocks (`AllTrue`/`AllFalse`) contribute exact counts;
    /// `Mixed` blocks are charged half their candidate rows. The planner
    /// uses this to pick hash-join build sides and to annotate `EXPLAIN`.
    pub(crate) fn estimate(&self) -> ScanEstimate {
        let total_blocks = self.nrows.div_ceil(self.block_rows);
        let (lo, hi) = self.bounds();
        let mut est = ScanEstimate {
            rows: 0,
            skipped: total_blocks,
            taken: 0,
            evaluated: 0,
        };
        if lo >= hi {
            return est;
        }
        let b0 = lo / self.block_rows;
        let b1 = (hi - 1) / self.block_rows + 1;
        est.skipped = total_blocks - (b1 - b0);
        for b in b0..b1 {
            let s = (b * self.block_rows).max(lo);
            let e = ((b + 1) * self.block_rows).min(hi);
            match self.node.verdict(b) {
                Verdict::AllFalse => est.skipped += 1,
                Verdict::AllTrue => {
                    est.taken += 1;
                    est.rows += e - s;
                }
                Verdict::Mixed => {
                    est.evaluated += 1;
                    est.rows += (e - s).div_ceil(2);
                }
            }
        }
        est
    }
}

/// Statistics-only cardinality estimate for one compiled scan (see
/// [`CompiledPredicate::estimate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ScanEstimate {
    /// Estimated matching rows.
    pub rows: usize,
    /// Blocks proven `AllFalse` (or excluded by sorted bounds) — skipped.
    pub skipped: usize,
    /// Blocks proven `AllTrue` — taken whole without evaluation.
    pub taken: usize,
    /// Blocks the scan must evaluate row by row.
    pub evaluated: usize,
}

/// Resolves a requested scan worker count: `0` = auto (serial under
/// [`PARALLEL_MIN_ROWS`] rows, else the machine's parallelism).
pub(crate) fn resolve_workers(requested: usize, rows: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    if rows < PARALLEL_MIN_ROWS {
        1
    } else {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(4)
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A worker panic aborts the scope anyway; a poisoned slot vector is
    // still structurally intact.
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Runs `f(0..blocks)` on up to `workers` scoped threads fed from a
/// [`WorkQueue`] and returns the results **in block order** — output is
/// independent of the worker count or scheduling.
pub(crate) fn scan_blocks<R, F>(blocks: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.min(blocks).max(1);
    if workers <= 1 {
        return (0..blocks).map(f).collect();
    }
    let queue = WorkQueue::new(blocks);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..blocks).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                while let Some(b) = queue.take() {
                    let r = f(b);
                    lock(&slots)[b] = Some(r);
                }
            });
        }
    });
    let slots = match slots.into_inner() {
        Ok(v) => v,
        Err(p) => p.into_inner(),
    };
    // Every slot is Some: the queue dispenses every index and a claimed
    // job always completes (a worker panic would have propagated above).
    slots.into_iter().flatten().collect()
}

/// Borrowed hashable key form of a non-null [`Value`] (floats by bit
/// pattern). Unlike [`ValueKey`](crate::ValueKey), probing never clones
/// text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum KeyRef<'a> {
    Bool(bool),
    Int(i64),
    Float(u64),
    Timestamp(i64),
    Text(&'a str),
}

impl<'a> KeyRef<'a> {
    /// `None` for null — null keys never join or group.
    pub(crate) fn of(v: &'a Value) -> Option<KeyRef<'a>> {
        match v {
            Value::Null => None,
            Value::Bool(b) => Some(KeyRef::Bool(*b)),
            Value::Int(i) => Some(KeyRef::Int(*i)),
            Value::Float(f) => Some(KeyRef::Float(f.to_bits())),
            Value::Timestamp(t) => Some(KeyRef::Timestamp(*t)),
            Value::Text(s) => Some(KeyRef::Text(s)),
        }
    }
}

/// A hash index over one key column, built once from the typed column
/// slice and probed per row — the join side of the compiled engine, also
/// reused by the analysis layer's `reconstruct_flows`.
///
/// Key equality is exact-type (`Int(1)` and `Float(1.0)` are distinct,
/// like [`ValueKey`](crate::ValueKey)); null keys are never indexed and
/// never match.
///
/// # Examples
///
/// ```
/// use mscope_db::{KeyIndex, Value};
///
/// let col = vec![Value::Text("r1".into()), Value::Null, Value::Text("r1".into())];
/// let idx = KeyIndex::build(&col);
/// assert_eq!(idx.rows(&Value::Text("r1".into())), &[0, 2]);
/// assert_eq!(idx.last_text("r1"), Some(2));
/// assert_eq!(idx.rows(&Value::Null), &[] as &[usize]);
/// ```
pub struct KeyIndex<'a> {
    map: HashMap<KeyRef<'a>, Vec<usize>>,
}

impl<'a> KeyIndex<'a> {
    /// Indexes every non-null value of `col` by row index.
    pub fn build(col: &'a [Value]) -> KeyIndex<'a> {
        let mut map: HashMap<KeyRef<'a>, Vec<usize>> = HashMap::new();
        for (i, v) in col.iter().enumerate() {
            if let Some(k) = KeyRef::of(v) {
                map.entry(k).or_default().push(i);
            }
        }
        KeyIndex { map }
    }

    /// Row indices whose key equals `v`, ascending (empty for null or
    /// unseen keys).
    pub fn rows(&self, v: &'a Value) -> &[usize] {
        KeyRef::of(v)
            .and_then(|k| self.map.get(&k))
            .map_or(&[][..], Vec::as_slice)
    }

    /// The last row whose **text** key equals `s` — the "latest record
    /// wins" lookup `reconstruct_flows` uses for request IDs.
    pub fn last_text(&self, s: &'a str) -> Option<usize> {
        self.map
            .get(&KeyRef::Text(s))
            .and_then(|r| r.last())
            .copied()
    }

    /// Number of distinct non-null keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no non-null key was indexed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Column;

    fn int_table(name: &str, vals: &[i64]) -> Table {
        let schema = Schema::new(vec![Column::new("t", ColumnType::Int)]).unwrap();
        let mut t = Table::new(name, schema);
        for &v in vals {
            t.push_row(vec![Value::Int(v)]).unwrap();
        }
        t
    }

    #[test]
    fn sorted_flag_tracks_appends() {
        let t = int_table("s", &[1, 2, 2, 5]);
        assert!(t.table_index().col(0).unwrap().sorted());
        let u = int_table("u", &[1, 3, 2]);
        assert!(!u.table_index().col(0).unwrap().sorted());
    }

    #[test]
    fn null_after_data_clears_sorted_flag() {
        let schema = Schema::new(vec![Column::new("t", ColumnType::Int)]).unwrap();
        let mut t = Table::new("n", schema);
        t.push_row(vec![Value::Int(1)]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        assert!(!t.table_index().col(0).unwrap().sorted());
    }

    #[test]
    fn block_verdicts_prune_and_accept() {
        let s = {
            let mut b = BlockStat::empty();
            for v in [10i64, 20, 30] {
                b.add(&Value::Int(v));
            }
            b
        };
        // Entirely below / above the block.
        assert_eq!(s.verdict_cmp(CmpOp::Eq, &Value::Int(5)), Verdict::AllFalse);
        assert_eq!(s.verdict_cmp(CmpOp::Lt, &Value::Int(5)), Verdict::AllFalse);
        assert_eq!(s.verdict_cmp(CmpOp::Lt, &Value::Int(31)), Verdict::AllTrue);
        assert_eq!(s.verdict_cmp(CmpOp::Ge, &Value::Int(10)), Verdict::AllTrue);
        assert_eq!(s.verdict_cmp(CmpOp::Ge, &Value::Int(11)), Verdict::Mixed);
        assert_eq!(
            s.verdict_between(&Value::Int(0), &Value::Int(31)),
            Verdict::AllTrue
        );
        assert_eq!(
            s.verdict_between(&Value::Int(31), &Value::Int(40)),
            Verdict::AllFalse
        );
        assert_eq!(
            s.verdict_between(&Value::Int(15), &Value::Int(40)),
            Verdict::Mixed
        );
    }

    #[test]
    fn nulls_block_all_true_but_not_all_false() {
        let mut b = BlockStat::empty();
        b.add(&Value::Int(1));
        b.add(&Value::Null);
        assert_eq!(b.verdict_cmp(CmpOp::Ge, &Value::Int(0)), Verdict::Mixed);
        assert_eq!(b.verdict_cmp(CmpOp::Gt, &Value::Int(1)), Verdict::AllFalse);
        let mut all_null = BlockStat::empty();
        all_null.add(&Value::Null);
        assert_eq!(
            all_null.verdict_cmp(CmpOp::Ne, &Value::Int(1)),
            Verdict::AllFalse
        );
    }

    #[test]
    fn compiled_matches_naive_on_sorted_and_unsorted() {
        for vals in [
            vec![1i64, 2, 3, 4, 5, 6, 7, 8],
            vec![5, 1, 9, 3, 7, 2, 8, 4],
        ] {
            let t = int_table("m", &vals);
            for pred in [
                Predicate::Between("t".into(), Value::Int(2), Value::Int(6)),
                Predicate::Not(Box::new(Predicate::Lt("t".into(), Value::Int(4)))),
                Predicate::Or(vec![
                    Predicate::Eq("t".into(), Value::Int(1)),
                    Predicate::Ge("t".into(), Value::Int(7)),
                ]),
                Predicate::Eq("missing".into(), Value::Int(1)),
                Predicate::Not(Box::new(Predicate::Eq("missing".into(), Value::Int(1)))),
            ] {
                let compiled = CompiledPredicate::compile(&t, &pred);
                let naive: Vec<usize> = (0..t.row_count()).filter(|&i| pred.eval(&t, i)).collect();
                assert_eq!(
                    compiled.matching_rows(),
                    naive,
                    "pred {pred:?} vals {vals:?}"
                );
            }
        }
    }

    #[test]
    fn matching_rows_identical_for_any_worker_count() {
        let vals: Vec<i64> = (0..5000).map(|i| (i * 37) % 1000).collect();
        let mut t = int_table("w", &vals);
        t.reindex(64); // many blocks so parallelism has work to split
        let pred = Predicate::Between("t".into(), Value::Int(100), Value::Int(700));
        let compiled = CompiledPredicate::compile(&t, &pred);
        let serial = compiled.matching_rows();
        for workers in [2, 3, 8] {
            assert_eq!(compiled.matching_rows_with(workers), serial);
        }
    }

    #[test]
    fn key_index_groups_rows_and_skips_nulls() {
        let col = vec![Value::Int(1), Value::Float(1.0), Value::Null, Value::Int(1)];
        let idx = KeyIndex::build(&col);
        assert_eq!(idx.rows(&Value::Int(1)), &[0, 3]);
        assert_eq!(idx.rows(&Value::Float(1.0)), &[1], "exact-type equality");
        assert_eq!(idx.rows(&Value::Null), &[] as &[usize]);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn scan_blocks_preserves_order() {
        let out = scan_blocks(100, 7, |b| b * 2);
        assert_eq!(out, (0..100).map(|b| b * 2).collect::<Vec<_>>());
        assert_eq!(scan_blocks(0, 4, |b| b), Vec::<usize>::new());
    }
}
