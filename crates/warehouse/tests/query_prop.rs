//! Property tests: the compiled, indexed query engine is result-identical
//! to the naive row-at-a-time oracles for arbitrary tables, predicate
//! trees, block sizes, and worker counts — including tables whose
//! timestamp column is *not* sorted, where the binary-search narrowing
//! must conservatively stand down.

use mscope_db::{AggFn, Column, ColumnType, Predicate, Schema, Table, Value};
use mscope_sim::prop::{forall, Gen};

/// Generates an event-shaped table with a timestamp column (sorted with
/// probability ½), an Int or Float metric column, and a short-alphabet
/// text key column, with nulls sprinkled everywhere the schema admits
/// them. Rebuilds the zone maps at an arbitrary (often tiny) block size
/// so block-boundary edge cases are exercised constantly.
fn arb_table(g: &mut Gen, name: &str) -> Table {
    let float_metric = g.bool();
    let schema = Schema::new(vec![
        Column::new("ts", ColumnType::Timestamp),
        Column::new(
            "num",
            if float_metric {
                ColumnType::Float
            } else {
                ColumnType::Int
            },
        ),
        Column::new("tag", ColumnType::Text),
    ])
    .expect("static schema is valid");
    let mut t = Table::new(name, schema);
    let sorted = g.bool();
    let nrows = g.usize(0..=200);
    let mut ts = 0i64;
    for _ in 0..nrows {
        ts = if sorted {
            ts + g.i64(0..=5_000)
        } else {
            g.i64(-100_000..=100_000)
        };
        let tsv = if g.bool() && g.bool() {
            Value::Null
        } else {
            Value::Timestamp(ts)
        };
        let num = if g.bool() && g.bool() {
            Value::Null
        } else if float_metric {
            // Float columns admit Int cells: mix both so zone maps see
            // cross-type numeric comparisons.
            if g.bool() {
                Value::Float(g.f64(-100.0..100.0))
            } else {
                Value::Int(g.i64(-100..=100))
            }
        } else {
            Value::Int(g.i64(-100..=100))
        };
        let tag = if g.bool() && g.bool() {
            Value::Null
        } else {
            Value::Text(g.choose(&["a", "b", "c", "d"]).to_string())
        };
        t.push_row(vec![tsv, num, tag]).expect("row fits schema");
    }
    t.reindex(g.choose(&[1usize, 2, 3, 7, 16, 64, 1024]));
    t
}

/// An arbitrary comparison value matched (or deliberately mismatched in
/// type) against the named column.
fn arb_value(g: &mut Gen, col: &str) -> Value {
    match col {
        "ts" => Value::Timestamp(g.i64(-100_000..=100_000)),
        "num" => {
            if g.bool() {
                Value::Int(g.i64(-100..=100))
            } else {
                Value::Float(g.f64(-100.0..100.0))
            }
        }
        _ => Value::Text(g.choose(&["a", "b", "c", "zz"]).to_string()),
    }
}

/// An arbitrary predicate tree of bounded depth. Occasionally names a
/// column the table does not have — a missing column must evaluate to
/// `false` (and flip under `Not`), never error or prune wrongly.
fn arb_pred(g: &mut Gen, depth: usize) -> Predicate {
    let leaf = depth == 0 || g.bool();
    if leaf {
        let col = g.choose(&["ts", "num", "tag", "nope"]).to_string();
        match g.usize(0..=7) {
            0 => Predicate::True,
            1 => Predicate::Eq(col.clone(), arb_value(g, &col)),
            2 => Predicate::Ne(col.clone(), arb_value(g, &col)),
            3 => Predicate::Lt(col.clone(), arb_value(g, &col)),
            4 => Predicate::Le(col.clone(), arb_value(g, &col)),
            5 => Predicate::Gt(col.clone(), arb_value(g, &col)),
            6 => Predicate::Ge(col.clone(), arb_value(g, &col)),
            _ => {
                let (a, b) = (arb_value(g, &col), arb_value(g, &col));
                Predicate::Between(col, a, b)
            }
        }
    } else {
        match g.usize(0..=2) {
            0 => Predicate::And(g.vec(0..=3, |g| arb_pred(g, depth - 1))),
            1 => Predicate::Or(g.vec(0..=3, |g| arb_pred(g, depth - 1))),
            _ => Predicate::Not(Box::new(arb_pred(g, depth - 1))),
        }
    }
}

#[test]
fn compiled_filter_matches_naive_oracle() {
    forall("filter ≡ filter_naive", 256, |g| {
        let t = arb_table(g, "events");
        let pred = arb_pred(g, 3);
        let expected = t.filter_naive(&pred);
        for workers in [0usize, 1, 2, 3, 8] {
            let got = t.filter_with(&pred, workers);
            if got != expected {
                return Err(format!(
                    "filter_with(workers={workers}) diverged on {} rows, \
                     pred {pred:?}: {} vs {} rows out",
                    t.row_count(),
                    got.row_count(),
                    expected.row_count()
                ));
            }
        }
        Ok(())
    });
}

#[test]
fn compiled_join_matches_naive_oracle() {
    forall("inner_join ≡ inner_join_naive", 128, |g| {
        let left = arb_table(g, "left");
        let right = arb_table(g, "right");
        let got = left.inner_join(&right, "tag", "tag");
        let expected = left.inner_join_naive(&right, "tag", "tag");
        match (got, expected) {
            (Ok(a), Ok(b)) if a == b => Ok(()),
            (Ok(a), Ok(b)) => Err(format!(
                "join diverged: {} vs {} rows",
                a.row_count(),
                b.row_count()
            )),
            (Err(_), Err(_)) => Ok(()),
            (a, b) => Err(format!("join error mismatch: {a:?} vs {b:?}")),
        }
    });
}

#[test]
fn fused_window_agg_matches_filter_then_agg() {
    forall("window_agg_where ≡ filter + window_agg", 128, |g| {
        let t = arb_table(g, "events");
        let pred = arb_pred(g, 2);
        let window = g.i64(1..=50_000).max(1);
        let agg = g.choose(&[
            AggFn::Count,
            AggFn::Sum,
            AggFn::Mean,
            AggFn::Min,
            AggFn::Max,
            AggFn::Last,
        ]);
        let (matched, fused) = t
            .window_agg_where(&pred, "ts", window, "num", agg)
            .map_err(|e| format!("fused path errored: {e:?}"))?;
        let filtered = t.filter_naive(&pred);
        if matched != filtered.row_count() {
            return Err(format!(
                "matched-row count {matched} ≠ filtered rows {}",
                filtered.row_count()
            ));
        }
        let staged = filtered
            .window_agg("ts", window, "num", agg)
            .map_err(|e| format!("staged path errored: {e:?}"))?;
        if fused != staged {
            return Err(format!(
                "series diverged: fused {} vs staged {} points",
                fused.len(),
                staged.len()
            ));
        }
        Ok(())
    });
}

#[test]
fn time_range_matches_predicate_filter() {
    forall("time_range ≡ filter(Between)", 128, |g| {
        let t = arb_table(g, "events");
        let mut a = g.i64(-100_000..=100_000);
        let mut b = g.i64(-100_000..=100_000);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let got = t.time_range("ts", a, b);
        let expected = t.filter_naive(&Predicate::Between(
            "ts".into(),
            Value::Timestamp(a),
            Value::Timestamp(b),
        ));
        if got != expected {
            return Err(format!(
                "time_range [{a}, {b}) gave {} rows, oracle {}",
                got.row_count(),
                expected.row_count()
            ));
        }
        Ok(())
    });
}
