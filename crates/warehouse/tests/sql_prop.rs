//! SQL-level property tests: for random queries spanning predicates ×
//! JOIN × GROUP BY × HAVING × ORDER BY × LIMIT, the planner's vectorized
//! executor is result-identical to an independent tree-walking
//! interpreter built from the naive reference verbs — across block
//! sizes, worker counts, and with the planner switched on *and* off.
//! Every parallel/optimized leg must additionally be **byte-identical**
//! (serialized JSON) to the first leg, and every generated query must
//! pass the static checker.

use mscope_db::{
    sql, AggFn, Column, ColumnType, Database, DbError, Predicate, QueryOptions, Schema, Table,
    Value, ValueKey,
};
use mscope_serdes::ToJson;
use mscope_sim::prop::{forall, Gen};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Query specs: a generatable, SQL-renderable subset of the grammar
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Cmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    fn sql(self) -> &'static str {
        match self {
            Cmp::Eq => "=",
            Cmp::Ne => "!=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
        }
    }

    fn pred(self, col: &str, v: Value) -> Predicate {
        let c = col.to_string();
        match self {
            Cmp::Eq => Predicate::Eq(c, v),
            Cmp::Ne => Predicate::Ne(c, v),
            Cmp::Lt => Predicate::Lt(c, v),
            Cmp::Le => Predicate::Le(c, v),
            Cmp::Gt => Predicate::Gt(c, v),
            Cmp::Ge => Predicate::Ge(c, v),
        }
    }
}

/// A renderable predicate tree over named columns with Int/Text literals.
#[derive(Debug, Clone)]
enum P {
    True,
    Cmp(String, Cmp, Value),
    And(Box<P>, Box<P>),
    Or(Box<P>, Box<P>),
    Not(Box<P>),
}

impl P {
    fn sql(&self) -> String {
        match self {
            // Rendered only as an absent WHERE clause.
            P::True => String::new(),
            P::Cmp(c, op, v) => {
                let lit = match v {
                    Value::Text(s) => format!("'{s}'"),
                    other => other.render(),
                };
                format!("{c} {} {lit}", op.sql())
            }
            P::And(a, b) => format!("({} AND {})", a.sql(), b.sql()),
            P::Or(a, b) => format!("({} OR {})", a.sql(), b.sql()),
            P::Not(a) => format!("NOT {}", a.sql()),
        }
    }

    fn pred(&self) -> Predicate {
        match self {
            P::True => Predicate::True,
            P::Cmp(c, op, v) => op.pred(c, v.clone()),
            P::And(a, b) => Predicate::And(vec![a.pred(), b.pred()]),
            P::Or(a, b) => Predicate::Or(vec![a.pred(), b.pred()]),
            P::Not(a) => Predicate::Not(Box::new(a.pred())),
        }
    }
}

/// One aggregate projection item: `COUNT(*)` (`col == "*"`) or
/// `<AGG>(col)`.
#[derive(Debug, Clone)]
struct AggSpec {
    agg: AggFn,
    col: String,
}

impl AggSpec {
    fn sql(&self) -> String {
        let kw = match self.agg {
            AggFn::Count => "COUNT",
            AggFn::Sum => "SUM",
            AggFn::Mean => "AVG",
            AggFn::Min => "MIN",
            AggFn::Max => "MAX",
            AggFn::Last => "LAST",
        };
        format!("{kw}({})", self.col)
    }

    /// The result-column name, mirroring the warehouse naming rules
    /// (no collision fallback needed: generation keeps columns distinct).
    fn out_name(&self, whole_table: bool) -> String {
        let label = match self.agg {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Mean => "avg",
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Last => "last",
        };
        match (self.col.as_str(), whole_table) {
            ("*", false) => "count".to_string(),
            ("*", true) => "count_*".to_string(),
            (c, false) => c.to_string(),
            (c, true) => format!("{label}_{c}"),
        }
    }
}

#[derive(Debug, Clone)]
struct Spec {
    /// Non-aggregate projection; `None` = `*`. Ignored when `aggs` is
    /// non-empty (keys render instead).
    cols: Option<Vec<String>>,
    aggs: Vec<AggSpec>,
    table: String,
    join: Option<(String, String, String)>,
    pred: P,
    group_by: Vec<String>,
    having: Option<P>,
    order_by: Option<(String, bool)>,
    limit: Option<usize>,
}

impl Spec {
    fn sql(&self) -> String {
        let mut items: Vec<String> = Vec::new();
        if self.aggs.is_empty() {
            match &self.cols {
                None => items.push("*".to_string()),
                Some(cs) => items.extend(cs.iter().cloned()),
            }
        } else {
            items.extend(self.group_by.iter().cloned());
            items.extend(self.aggs.iter().map(AggSpec::sql));
        }
        let mut s = format!("SELECT {} FROM {}", items.join(", "), self.table);
        if let Some((jt, lc, rc)) = &self.join {
            s.push_str(&format!(" JOIN {jt} ON {lc} = {rc}"));
        }
        let w = self.pred.sql();
        if !w.is_empty() {
            s.push_str(&format!(" WHERE {w}"));
        }
        if !self.group_by.is_empty() {
            s.push_str(&format!(" GROUP BY {}", self.group_by.join(", ")));
        }
        if let Some(h) = &self.having {
            s.push_str(&format!(" HAVING {}", h.sql()));
        }
        if let Some((c, asc)) = &self.order_by {
            s.push_str(&format!(" ORDER BY {c}{}", if *asc { "" } else { " DESC" }));
        }
        if let Some(n) = self.limit {
            s.push_str(&format!(" LIMIT {n}"));
        }
        s
    }
}

// ---------------------------------------------------------------------
// Database generation
// ---------------------------------------------------------------------

/// `ev(ts, num, tag)` — timestamps sorted with probability ½ (so sort
/// elision fires sometimes), Int metric and short-alphabet text key with
/// nulls — and `dim(tag, w)`, a small fan-out dimension table. Both are
/// reindexed at arbitrary block sizes.
fn arb_db(g: &mut Gen) -> Database {
    let ev_schema = Schema::new(vec![
        Column::new("ts", ColumnType::Timestamp),
        Column::new("num", ColumnType::Int),
        Column::new("tag", ColumnType::Text),
    ])
    .expect("static schema is valid");
    let mut ev = Table::new("ev", ev_schema);
    let sorted = g.bool();
    let mut ts = 0i64;
    for _ in 0..g.usize(0..=120) {
        ts = if sorted {
            ts + g.i64(0..=5_000)
        } else {
            g.i64(0..=500_000)
        };
        let tsv = if g.bool() && g.bool() {
            Value::Null
        } else {
            Value::Timestamp(ts)
        };
        let num = if g.bool() && g.bool() {
            Value::Null
        } else {
            Value::Int(g.i64(-50..=50))
        };
        let tag = if g.bool() && g.bool() {
            Value::Null
        } else {
            Value::Text(g.choose(&["a", "b", "c", "d"]).to_string())
        };
        ev.push_row(vec![tsv, num, tag]).expect("row fits schema");
    }
    ev.reindex(g.choose(&[1usize, 3, 7, 16, 1024]));

    let dim_schema = Schema::new(vec![
        Column::new("tag", ColumnType::Text),
        Column::new("w", ColumnType::Int),
    ])
    .expect("static schema is valid");
    let mut dim = Table::new("dim", dim_schema);
    for _ in 0..g.usize(0..=8) {
        let tag = if g.bool() && g.bool() {
            Value::Null
        } else {
            Value::Text(g.choose(&["a", "b", "c", "d", "e"]).to_string())
        };
        dim.push_row(vec![tag, Value::Int(g.i64(0..=9))])
            .expect("row fits schema");
    }
    dim.reindex(g.choose(&[1usize, 2, 64]));

    let mut db = Database::new();
    db.replace_table(ev).expect("ev is not static");
    db.replace_table(dim).expect("dim is not static");
    db
}

// ---------------------------------------------------------------------
// Query generation
// ---------------------------------------------------------------------

fn arb_literal(g: &mut Gen, col: &str) -> Value {
    if col.ends_with("tag") {
        Value::Text(g.choose(&["a", "b", "c", "e"]).to_string())
    } else {
        Value::Int(g.i64(-40..=40))
    }
}

fn arb_cmp(g: &mut Gen) -> Cmp {
    g.choose(&[Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge])
}

/// A predicate tree over `cols` (source-relation names), depth-bounded.
fn arb_p(g: &mut Gen, cols: &[&str], depth: usize) -> P {
    if depth == 0 || g.bool() {
        let col = g.choose(cols);
        P::Cmp(col.to_string(), arb_cmp(g), arb_literal(g, col))
    } else {
        match g.usize(0..=2) {
            0 => P::And(
                Box::new(arb_p(g, cols, depth - 1)),
                Box::new(arb_p(g, cols, depth - 1)),
            ),
            1 => P::Or(
                Box::new(arb_p(g, cols, depth - 1)),
                Box::new(arb_p(g, cols, depth - 1)),
            ),
            _ => P::Not(Box::new(arb_p(g, cols, depth - 1))),
        }
    }
}

fn arb_spec(g: &mut Gen) -> Spec {
    let join = g.bool();
    // Source-relation column names: `dim.tag` collides with `ev.tag` and
    // surfaces as `dim_tag`.
    let source: Vec<&str> = if join {
        vec!["ts", "num", "tag", "dim_tag", "w"]
    } else {
        vec!["ts", "num", "tag"]
    };
    let where_cols: Vec<&str> = if join {
        vec!["num", "tag", "dim_tag", "w"]
    } else {
        vec!["num", "tag"]
    };
    let numeric: Vec<&str> = if join {
        vec!["ts", "num", "w"]
    } else {
        vec!["ts", "num"]
    };

    let pred = if g.bool() {
        let depth = g.usize(0..=2);
        arb_p(g, &where_cols, depth)
    } else {
        P::True
    };

    let grouped = g.bool();
    let (mut group_by, mut aggs): (Vec<String>, Vec<AggSpec>) = (Vec::new(), Vec::new());
    let mut cols = None;
    if grouped {
        let keys: Vec<&str> = if join {
            vec!["tag", "num", "dim_tag", "w"]
        } else {
            vec!["tag", "num"]
        };
        group_by.push(g.choose(&keys).to_string());
        if g.bool() {
            let second = g.choose(&keys).to_string();
            if !group_by.contains(&second) {
                group_by.push(second);
            }
        }
        if g.bool() {
            aggs.push(AggSpec {
                agg: AggFn::Count,
                col: "*".to_string(),
            });
        }
        // Aggregate inputs: numeric columns not used as keys, each at
        // most once so output names never collide.
        for c in &numeric {
            if !group_by.iter().any(|k| k == c) && g.bool() && g.bool() {
                let agg = g.choose(&[AggFn::Sum, AggFn::Mean, AggFn::Min, AggFn::Max]);
                aggs.push(AggSpec {
                    agg,
                    col: (*c).to_string(),
                });
            }
        }
        if aggs.is_empty() {
            aggs.push(AggSpec {
                agg: AggFn::Count,
                col: "*".to_string(),
            });
        }
    } else if g.bool() {
        // Whole-table aggregate.
        aggs.push(AggSpec {
            agg: AggFn::Count,
            col: "*".to_string(),
        });
        if g.bool() {
            let c = g.choose(&numeric);
            let agg = g.choose(&[AggFn::Sum, AggFn::Mean, AggFn::Min, AggFn::Max]);
            aggs.push(AggSpec {
                agg,
                col: c.to_string(),
            });
        }
    } else if g.bool() {
        // Explicit projection: a distinct, non-empty subset.
        let mut cs: Vec<String> = Vec::new();
        for c in &source {
            if g.bool() {
                cs.push((*c).to_string());
            }
        }
        if cs.is_empty() {
            cs.push("num".to_string());
        }
        cols = Some(cs);
    }

    // Result-column names, for HAVING and ORDER BY.
    let whole_table = !aggs.is_empty() && group_by.is_empty();
    let result_cols: Vec<String> = if aggs.is_empty() {
        match &cols {
            None => source.iter().map(|s| s.to_string()).collect(),
            Some(cs) => cs.clone(),
        }
    } else {
        let agg_names: Vec<String> = aggs.iter().map(|a| a.out_name(whole_table)).collect();
        let mut out: Vec<String> = group_by
            .iter()
            .map(|k| {
                if agg_names.iter().any(|n| n == k) {
                    format!("{k}_key")
                } else {
                    k.clone()
                }
            })
            .collect();
        out.extend(agg_names);
        out
    };

    let having = if !group_by.is_empty() && g.bool() {
        let agg_names: Vec<&str> = result_cols[group_by.len()..]
            .iter()
            .map(String::as_str)
            .collect();
        let col = g.choose(&agg_names);
        // Aggregate outputs are Float; compare against small ints.
        Some(P::Cmp(
            col.to_string(),
            arb_cmp(g),
            Value::Int(g.i64(0..=5)),
        ))
    } else {
        None
    };

    // `count_*` is a valid result name but not a lexable identifier, so
    // it can never be an ORDER BY target.
    let sortable: Vec<&str> = result_cols
        .iter()
        .filter(|c| !c.contains('*'))
        .map(String::as_str)
        .collect();
    let order_by = if g.bool() && !sortable.is_empty() {
        Some((g.choose(&sortable).to_string(), g.bool()))
    } else {
        None
    };
    let limit = g.bool().then(|| g.usize(0..=7));

    Spec {
        cols,
        aggs,
        table: "ev".to_string(),
        join: join.then(|| ("dim".to_string(), "tag".to_string(), "tag".to_string())),
        pred,
        group_by,
        having,
        order_by,
        limit,
    }
}

// ---------------------------------------------------------------------
// The independent tree-walking interpreter (naive verbs only)
// ---------------------------------------------------------------------

fn fold_vals(agg: AggFn, vals: &[f64], count: usize, whole_table: bool) -> Option<f64> {
    match agg {
        AggFn::Count => Some(count as f64),
        AggFn::Sum => {
            if !vals.is_empty() {
                Some(vals.iter().sum())
            } else if whole_table {
                Some(0.0)
            } else {
                None
            }
        }
        AggFn::Mean => (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64),
        AggFn::Min => vals.iter().copied().reduce(f64::min),
        AggFn::Max => vals.iter().copied().reduce(f64::max),
        AggFn::Last => vals.last().copied(),
    }
}

fn naive_aggregate(cur: &Table, q: &Spec, name: &str) -> Result<Table, DbError> {
    let whole_table = q.group_by.is_empty();
    let agg_names: Vec<String> = q.aggs.iter().map(|a| a.out_name(whole_table)).collect();
    let key_names: Vec<String> = q
        .group_by
        .iter()
        .map(|k| {
            if agg_names.iter().any(|n| n == k) {
                format!("{k}_key")
            } else {
                k.clone()
            }
        })
        .collect();
    let mut columns: Vec<Column> = key_names
        .iter()
        .map(|k| Column::new(k.clone(), ColumnType::Text))
        .collect();
    columns.extend(
        agg_names
            .iter()
            .map(|n| Column::new(n.clone(), ColumnType::Float)),
    );
    let schema = Schema::new(columns)?;

    let kcols: Vec<&[Value]> = q
        .group_by
        .iter()
        .map(|k| cur.column(k).expect("key resolved"))
        .collect();
    let acols: Vec<Option<&[Value]>> = q
        .aggs
        .iter()
        .map(|a| (a.col != "*").then(|| cur.column(&a.col).expect("aggregate input resolved")))
        .collect();

    // first-seen groups: (first row, per-agg accepted values, per-agg
    // non-null count).
    let mut seen: HashMap<Vec<ValueKey>, usize> = HashMap::new();
    let mut groups: Vec<(usize, Vec<Vec<f64>>, Vec<usize>)> = Vec::new();
    'rows: for i in 0..cur.row_count() {
        let mut kt = Vec::with_capacity(kcols.len());
        for kc in &kcols {
            if kc[i].is_null() {
                continue 'rows;
            }
            kt.push(kc[i].key());
        }
        let gi = match seen.get(&kt) {
            Some(&gi) => gi,
            None => {
                groups.push((i, vec![Vec::new(); q.aggs.len()], vec![0; q.aggs.len()]));
                seen.insert(kt, groups.len() - 1);
                groups.len() - 1
            }
        };
        let (_, vals, counts) = &mut groups[gi];
        for (j, spec) in q.aggs.iter().enumerate() {
            match acols[j] {
                None => counts[j] += 1,
                Some(ac) => {
                    if spec.agg == AggFn::Count {
                        if !ac[i].is_null() {
                            counts[j] += 1;
                        }
                    } else if let Some(v) = ac[i].as_f64() {
                        vals[j].push(v);
                    }
                }
            }
        }
    }

    if whole_table {
        // One row, always emitted, over all rows (no key dropping).
        let (mut vals, mut counts) = (vec![Vec::new(); q.aggs.len()], vec![0usize; q.aggs.len()]);
        for i in 0..cur.row_count() {
            for (j, spec) in q.aggs.iter().enumerate() {
                match acols[j] {
                    None => counts[j] += 1,
                    Some(ac) => {
                        if spec.agg == AggFn::Count {
                            if !ac[i].is_null() {
                                counts[j] += 1;
                            }
                        } else if let Some(v) = ac[i].as_f64() {
                            vals[j].push(v);
                        }
                    }
                }
            }
        }
        let mut t = Table::new(name, schema);
        let row: Vec<Value> = q
            .aggs
            .iter()
            .enumerate()
            .map(|(j, spec)| {
                fold_vals(spec.agg, &vals[j], counts[j], true).map_or(Value::Null, Value::Float)
            })
            .collect();
        t.push_row(row)?;
        return Ok(t);
    }

    // Emit groups sorted by original key values, stable over first-seen.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (groups[a].0, groups[b].0);
        kcols
            .iter()
            .map(|kc| kc[ra].total_cmp(&kc[rb]))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut t = Table::new(name, schema);
    for &gi in &order {
        let (first, vals, counts) = &groups[gi];
        let outs: Vec<Option<f64>> = q
            .aggs
            .iter()
            .enumerate()
            .map(|(j, spec)| fold_vals(spec.agg, &vals[j], counts[j], false))
            .collect();
        if outs.iter().all(Option::is_none) {
            continue;
        }
        let mut row: Vec<Value> = kcols
            .iter()
            .map(|kc| Value::Text(kc[*first].render()))
            .collect();
        row.extend(
            outs.into_iter()
                .map(|o| o.map_or(Value::Null, Value::Float)),
        );
        t.push_row(row)?;
    }
    Ok(t)
}

/// Clause-by-clause evaluation with the naive reference verbs; the
/// oracle the planner legs must match byte for byte.
fn naive_eval(db: &Database, q: &Spec) -> Result<Table, DbError> {
    let left = db.require(&q.table)?;
    let base_name;
    let joined = match &q.join {
        Some((jt, lc, rc)) => {
            let right = db.require(jt)?;
            base_name = format!("{}_x_{jt}", q.table);
            left.inner_join_naive(right, lc, rc)?
        }
        None => {
            base_name = q.table.clone();
            left.filter_naive(&Predicate::True)
        }
    };
    let cur = joined.filter_naive(&q.pred.pred());

    let mut out = if !q.aggs.is_empty() {
        let name = if q.group_by.is_empty() {
            "result".to_string()
        } else {
            format!("{base_name}_by_{}", q.group_by[0])
        };
        naive_aggregate(&cur, q, &name)?
    } else {
        match &q.cols {
            None => cur,
            Some(cs) => {
                let refs: Vec<&str> = cs.iter().map(String::as_str).collect();
                cur.select(&refs, &Predicate::True)?
            }
        }
    };
    if let Some(h) = &q.having {
        out = out.filter_naive(&h.pred());
    }
    if let Some((c, asc)) = &q.order_by {
        out = out.order_by(c, *asc)?;
    }
    if let Some(n) = q.limit {
        let keep: Vec<usize> = (0..out.row_count().min(n)).collect();
        out = out.select_rows(&keep);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The property
// ---------------------------------------------------------------------

#[test]
fn planner_matches_naive_interpreter() {
    forall("sql planner ≡ naive interpreter", 192, |g| {
        let db = arb_db(g);
        let q = arb_spec(g);
        let sql_text = q.sql();

        // Every generated query must pass the static checker.
        sql::check_against(&db, &sql_text)
            .map_err(|e| format!("checker rejected `{sql_text}`: {e}"))?;

        let expected =
            naive_eval(&db, &q).map_err(|e| format!("oracle errored on `{sql_text}`: {e}"))?;

        let mut first_json: Option<String> = None;
        for optimize in [true, false] {
            for workers in [0usize, 1, 2, 8] {
                let got = db
                    .query_opts(&sql_text, QueryOptions { workers, optimize })
                    .map_err(|e| {
                        format!("query (opt={optimize}, w={workers}) errored on `{sql_text}`: {e}")
                    })?;
                if got != expected {
                    return Err(format!(
                        "`{sql_text}` (opt={optimize}, w={workers}): {} rows vs oracle {} \
                         rows\ngot:\n{}\nexpected:\n{}",
                        got.row_count(),
                        expected.row_count(),
                        got.render_text(12),
                        expected.render_text(12)
                    ));
                }
                let j = got.to_json().to_string();
                match &first_json {
                    None => first_json = Some(j),
                    Some(f) => {
                        if *f != j {
                            return Err(format!(
                                "`{sql_text}` (opt={optimize}, w={workers}) not byte-identical \
                                 to first leg"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    });
}

#[test]
fn explain_never_errors_and_is_stable() {
    forall("EXPLAIN is total and worker-independent", 96, |g| {
        let db = arb_db(g);
        let q = arb_spec(g);
        let sql_text = format!("EXPLAIN {}", q.sql());
        let mut first: Option<String> = None;
        for workers in [0usize, 3] {
            let plan = db
                .query_opts(
                    &sql_text,
                    QueryOptions {
                        workers,
                        optimize: true,
                    },
                )
                .map_err(|e| format!("`{sql_text}` errored: {e}"))?;
            if plan.name() != "explain" || plan.row_count() == 0 {
                return Err(format!(
                    "`{sql_text}`: want a non-empty `explain` table, got `{}` with {} rows",
                    plan.name(),
                    plan.row_count()
                ));
            }
            let j = plan.to_json().to_string();
            match &first {
                None => first = Some(j),
                Some(f) => {
                    if *f != j {
                        return Err(format!("`{sql_text}`: plan differs across worker counts"));
                    }
                }
            }
        }
        Ok(())
    });
}
