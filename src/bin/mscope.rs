//! `mscope` — command-line front end for the milliScope reproduction.
//!
//! ```text
//! mscope run [--scenario baseline|db-io|dirty-page] [--users N] [--secs S]
//!            [--seed X] [--dump-logs DIR] [--trace FILE] [--json]
//! mscope tables   …same run flags…      # list what lands in mScopeDB
//! mscope --help
//! ```
//!
//! `run` executes an experiment under the standard monitor suite, ingests
//! the logs, and prints the diagnosis; `--dump-logs` writes every native
//! monitor log to a real directory, `--trace` exports the slowest causal
//! paths as Chrome trace JSON.

use milliscope::core::scenarios::{calibrated_db_io, calibrated_dirty_page, shorten};
use milliscope::core::{
    dump_bundle, export_chrome_trace, ingest_bundle, DiagnoseOptions, Experiment, MilliScope,
    TraceExportOptions,
};
use milliscope::ntier::SystemConfig;
use milliscope::sim::SimDuration;
use std::path::PathBuf;
use std::process::exit;

#[derive(Debug)]
struct Args {
    command: String,
    scenario: String,
    users: u32,
    secs: u64,
    seed: Option<u64>,
    dump_logs: Option<PathBuf>,
    trace: Option<PathBuf>,
    report: Option<PathBuf>,
    bundle: Option<PathBuf>,
    json: bool,
    sql: Option<String>,
    describe: Option<String>,
}

const USAGE: &str = "\
usage: mscope <run|tables|query|ingest> [options]

options:
  --scenario baseline|db-io|dirty-page   which system to run   [db-io]
  --users N                              concurrent users      [500]
  --secs S                               measured seconds      [30]
  --seed X                               RNG seed              [preset]
  --sql QUERY                            SQL to run against mScopeDB (query cmd)
  --describe TABLE                       print a per-column summary (tables cmd)
  --dump-logs DIR                        write native monitor logs to DIR
  --bundle DIR                           run: archive logs+manifest to DIR;
                                         ingest: load and diagnose a bundle
  --trace FILE                           export slowest flows as Chrome trace JSON
  --report FILE                          write the diagnosis as a Markdown report
  --json                                 print the diagnosis report as JSON

examples:
  mscope run --scenario dirty-page --users 800
  mscope query --sql 'SELECT node, MAX(disk_util) FROM collectl GROUP BY node'
  mscope run --scenario db-io --bundle /tmp/incident-42
  mscope ingest --bundle /tmp/incident-42 --report incident-42.md
";

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let mut args = Args {
        command: String::new(),
        scenario: "db-io".into(),
        users: 500,
        secs: 30,
        seed: None,
        dump_logs: None,
        trace: None,
        report: None,
        bundle: None,
        json: false,
        sql: None,
        describe: None,
    };
    let next = |argv: &mut dyn Iterator<Item = String>, flag: &str| {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scenario" => args.scenario = next(&mut argv, "--scenario"),
            "--users" => {
                args.users = next(&mut argv, "--users")
                    .parse()
                    .unwrap_or_else(|_| die("bad --users"))
            }
            "--secs" => {
                args.secs = next(&mut argv, "--secs")
                    .parse()
                    .unwrap_or_else(|_| die("bad --secs"))
            }
            "--seed" => {
                args.seed = Some(
                    next(&mut argv, "--seed")
                        .parse()
                        .unwrap_or_else(|_| die("bad --seed")),
                )
            }
            "--sql" => args.sql = Some(next(&mut argv, "--sql")),
            "--describe" => args.describe = Some(next(&mut argv, "--describe")),
            "--dump-logs" => args.dump_logs = Some(PathBuf::from(next(&mut argv, "--dump-logs"))),
            "--trace" => args.trace = Some(PathBuf::from(next(&mut argv, "--trace"))),
            "--report" => args.report = Some(PathBuf::from(next(&mut argv, "--report"))),
            "--bundle" => args.bundle = Some(PathBuf::from(next(&mut argv, "--bundle"))),
            "--json" => args.json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            cmd if args.command.is_empty() && !cmd.starts_with('-') => {
                args.command = cmd.to_string()
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if args.command.is_empty() {
        die("missing command (run|tables|query|ingest)");
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    exit(2);
}

fn build_config(args: &Args) -> SystemConfig {
    let base = match args.scenario.as_str() {
        "baseline" => SystemConfig::rubbos_baseline(args.users),
        "db-io" => calibrated_db_io(args.users, 3.5, 300.0),
        "dirty-page" => calibrated_dirty_page(args.users, 8.0, 13.0, 400.0),
        other => die(&format!("unknown scenario `{other}`")),
    };
    let mut cfg = shorten(base, SimDuration::from_secs(args.secs));
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    cfg
}

fn main() {
    let args = parse_args();
    if args.command == "ingest" {
        let dir = args
            .bundle
            .as_deref()
            .unwrap_or_else(|| die("ingest needs --bundle DIR"));
        eprintln!("[mscope] ingesting bundle {}", dir.display());
        let ms = ingest_bundle(dir).unwrap_or_else(|e| die(&e.to_string()));
        eprintln!(
            "[mscope] loaded {} files / {} entries",
            ms.transform_report().files,
            ms.transform_report().entries
        );
        if let Some(sql) = &args.sql {
            match ms.db().query(sql) {
                Ok(table) => print!("{}", table.render_text(100)),
                Err(e) => die(&e.to_string()),
            }
            return;
        }
        let report = ms
            .diagnose(&DiagnoseOptions::default())
            .unwrap_or_else(|e| die(&e.to_string()));
        if let Some(path) = &args.report {
            std::fs::write(path, report.render_markdown())
                .unwrap_or_else(|e| die(&format!("writing report: {e}")));
            eprintln!("[mscope] wrote Markdown report to {}", path.display());
        } else {
            print!("{}", report.render_markdown());
        }
        return;
    }
    let cfg = build_config(&args);
    eprintln!(
        "[mscope] scenario {} — {} users, {} s measured, seed {:#x}",
        args.scenario,
        cfg.workload.users,
        cfg.duration.as_secs_f64(),
        cfg.seed
    );

    let experiment = Experiment::new(cfg).unwrap_or_else(|e| die(&e.to_string()));
    let output = experiment.run();
    eprintln!(
        "[mscope] completed {} requests, {:.1} req/s, mean RT {:.2} ms",
        output.run.stats.completed, output.run.stats.throughput_rps, output.run.stats.mean_rt_ms
    );

    if args.command == "run" {
        if let Some(dir) = &args.bundle {
            dump_bundle(&output, dir).unwrap_or_else(|e| die(&e.to_string()));
            eprintln!("[mscope] archived bundle to {}", dir.display());
        }
    }

    if let Some(dir) = &args.dump_logs {
        output
            .artifacts
            .store
            .dump_to_dir(dir)
            .unwrap_or_else(|e| die(&format!("dumping logs: {e}")));
        eprintln!(
            "[mscope] wrote {} log files ({:.1} KiB) under {}",
            output.artifacts.store.len(),
            output.artifacts.store.total_bytes() as f64 / 1024.0,
            dir.display()
        );
    }

    let ms = MilliScope::ingest(&output).unwrap_or_else(|e| die(&e.to_string()));

    match args.command.as_str() {
        "tables" => {
            if let Some(name) = &args.describe {
                match ms.db().require(name) {
                    Ok(t) => print!("{}", t.describe().render_text(0)),
                    Err(e) => die(&e.to_string()),
                }
            } else {
                println!("{:<20} {:>10}", "table", "rows");
                for name in ms.db().table_names() {
                    let rows = ms
                        .db()
                        .require(name)
                        .expect("listed table exists")
                        .row_count();
                    println!("{name:<20} {rows:>10}");
                }
            }
        }
        "run" => {
            let report = ms
                .diagnose(&DiagnoseOptions::default())
                .unwrap_or_else(|e| die(&e.to_string()));
            if let Some(path) = &args.report {
                std::fs::write(path, report.render_markdown())
                    .unwrap_or_else(|e| die(&format!("writing report: {e}")));
                eprintln!("[mscope] wrote Markdown report to {}", path.display());
            }
            if args.json {
                println!("{}", mscope_serdes::to_string_pretty(&report));
            } else if report.episodes.is_empty() {
                println!(
                    "no anomalies: mean RT {:.2} ms, no VLRT episodes detected",
                    report.mean_rt_ms
                );
            } else {
                println!(
                    "mean RT {:.2} ms; {} VLRT episode(s):",
                    report.mean_rt_ms,
                    report.episodes.len()
                );
                for ep in &report.episodes {
                    println!(
                        "  t={:>7.2}s  dur {:>4.0} ms  peak {:>6.0} ms ({:>4.0}x)  tier {}  → {}",
                        ep.episode.start_us as f64 / 1e6,
                        ep.episode.duration_ms(),
                        ep.episode.peak_ms,
                        ep.episode.ratio,
                        ep.suspect_tier,
                        ep.root_cause.describe()
                    );
                }
            }
        }
        "query" => {
            let sql = args
                .sql
                .as_deref()
                .unwrap_or_else(|| die("query needs --sql"));
            match ms.db().query(sql) {
                Ok(table) => print!("{}", table.render_text(100)),
                Err(e) => die(&e.to_string()),
            }
        }
        other => die(&format!("unknown command `{other}`")),
    }

    if let Some(path) = &args.trace {
        let flows = ms.flows().unwrap_or_else(|e| die(&e.to_string()));
        let json = export_chrome_trace(
            &flows,
            &TraceExportOptions {
                min_rt_ms: 0,
                max_flows: 200,
            },
        );
        std::fs::write(path, json).unwrap_or_else(|e| die(&format!("writing trace: {e}")));
        eprintln!(
            "[mscope] wrote Chrome trace of the 200 slowest flows to {}",
            path.display()
        );
    }
}
