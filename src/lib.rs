//! # milliScope — a millisecond-granularity monitoring framework for n-tier
//! web services
//!
//! A from-scratch Rust reproduction of *milliScope: a Fine-Grained
//! Monitoring Framework for Performance Debugging of n-Tier Web Services*
//! (Lai, Kimball, Zhu, Wang, Pu — ICDCS 2017).
//!
//! This crate is the facade: it re-exports the whole workspace so an
//! application can depend on `milliscope` alone. The pieces, bottom-up:
//!
//! | Crate | Paper artifact |
//! |---|---|
//! | [`sim`] | discrete-event kernel (time, events, RNG, statistics) |
//! | [`ntier`] | the simulated 4-tier RUBBoS testbed + VSB scenarios |
//! | [`monitors`] | event & resource mScopeMonitors, SysViz tap |
//! | [`transform`] | mScopeDataTransformer (parsers → XML → CSV → load) |
//! | [`db`] | mScopeDB dynamic data warehouse |
//! | [`analysis`] | PIT response time, queues, causal paths, detectors |
//! | [`core`] | `Experiment` → `MilliScope` → `diagnose` end to end |
//!
//! ## Quickstart
//!
//! ```
//! use milliscope::core::{DiagnoseOptions, Experiment, MilliScope};
//! use milliscope::core::scenarios::{calibrated_db_io, shorten};
//! use milliscope::sim::SimDuration;
//!
//! // Reproduce scenario A at test scale: DB log flush every ~3 s.
//! let cfg = shorten(calibrated_db_io(300, 3.0, 250.0), SimDuration::from_secs(15));
//! let output = Experiment::new(cfg)?.run();
//! let ms = MilliScope::ingest(&output)?;
//! let report = ms.diagnose(&DiagnoseOptions::default())?;
//! assert!(report.has_anomalies());
//! # Ok::<(), milliscope::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mscope_analysis as analysis;
pub use mscope_core as core;
pub use mscope_db as db;
pub use mscope_monitors as monitors;
pub use mscope_ntier as ntier;
pub use mscope_sim as sim;
pub use mscope_transform as transform;

/// Workspace version, for diagnostics.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_exposes_everything() {
        // Touch one symbol per subcrate so a broken re-export fails here.
        let _ = crate::sim::SimTime::ZERO;
        let _ = crate::ntier::TierKind::Apache;
        let _ = crate::monitors::LogStore::new();
        let _ = crate::transform::Tok::Ws;
        let _ = crate::db::Database::new();
        let _ = crate::analysis::PitSeries::default();
        let _ = crate::core::DiagnoseOptions::default();
        assert!(!crate::VERSION.is_empty());
    }
}
